//! End-to-end socket tests of the alignment server:
//!
//! * every client's record stream is byte-identical to the one-shot
//!   pipeline (≡ `genasm align`) over that client's reads — including
//!   N clients at once, mixed formats, and mixed backends;
//! * the control verbs (PING/STATS/SET/SHUTDOWN) behave;
//! * graceful drain finishes in-flight sessions, rejects new ones,
//!   and shuts the listener down.

use std::io::{BufRead, BufReader, Cursor, Write};

use align_core::{Reference, Seq};
use genasm_pipeline::{
    run_pipeline, BackendKind, OutputFormat, PipelineConfig, ReadInput, ServiceConfig,
};
use genasm_server::client::{submit, SubmitOptions};
use genasm_server::{connect, Endpoint, Server, ServerConfig};
use readsim::{
    simulate_reads, write_fastq, ErrorModel, FastxRecord, Genome, GenomeConfig, ReadConfig,
};

/// A deterministic reference plus helper to cut per-client read sets.
struct Fixture {
    reference: Seq,
}

impl Fixture {
    fn new(genome_len: usize) -> Fixture {
        let genome = Genome::generate(&GenomeConfig::human_like(genome_len, 77));
        Fixture {
            reference: genome.seq,
        }
    }

    /// Simulate `count` reads with a per-client seed.
    fn reads(&self, count: usize, read_len: usize, seed: u64) -> Vec<(String, Seq)> {
        let genome = Genome {
            seq: self.reference.clone(),
            planted: Vec::new(),
        };
        simulate_reads(
            &genome,
            &ReadConfig {
                count,
                length: read_len,
                errors: ErrorModel::pacbio_clr(0.08),
                rc_fraction: 0.5,
                seed,
            },
        )
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("c{seed}read{i}"), r.seq))
        .collect()
    }

    /// The golden expectation for one client's reads.
    fn expected(&self, reads: &[(String, Seq)], backend: BackendKind, fmt: OutputFormat) -> String {
        let stream = reads.iter().map(|(name, seq)| {
            Ok::<_, std::convert::Infallible>(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
        });
        let mut buf = String::new();
        run_pipeline(
            stream,
            Reference::single("ref", self.reference.clone()),
            backend.create().as_ref(),
            &PipelineConfig::default(),
            |rec| {
                buf.push_str(&fmt.line(rec));
                buf.push('\n');
                Ok(())
            },
        )
        .expect("one-shot pipeline failed");
        buf
    }

    fn start_server(&self, service: ServiceConfig) -> Server {
        Server::start(
            ServerConfig {
                endpoint: Endpoint::parse("127.0.0.1:0").unwrap(),
                default_backend: BackendKind::Cpu.into(),
                default_format: OutputFormat::Tsv,
                idle_timeout: None,
                service,
            },
            "ref",
            Reference::single("ref", self.reference.clone()),
        )
        .expect("server start")
    }

    /// Like [`Fixture::start_server`] with an idle timeout configured.
    fn start_server_with_timeout(
        &self,
        service: ServiceConfig,
        idle_timeout: std::time::Duration,
    ) -> Server {
        Server::start(
            ServerConfig {
                endpoint: Endpoint::parse("127.0.0.1:0").unwrap(),
                default_backend: BackendKind::Cpu.into(),
                default_format: OutputFormat::Tsv,
                idle_timeout: Some(idle_timeout),
                service,
            },
            "ref",
            Reference::single("ref", self.reference.clone()),
        )
        .expect("server start")
    }
}

/// Render reads as FASTQ bytes (what a client streams after BEGIN).
fn fastq_bytes(reads: &[(String, Seq)]) -> Vec<u8> {
    let records: Vec<FastxRecord> = reads
        .iter()
        .map(|(name, seq)| FastxRecord::fastq(name, seq.clone(), vec![40; seq.len()]))
        .collect();
    let mut buf = Vec::new();
    write_fastq(&mut buf, &records).unwrap();
    buf
}

/// Drive one full client conversation; returns (records, status).
fn run_client(
    endpoint: &Endpoint,
    reads: &[(String, Seq)],
    opts: &SubmitOptions,
) -> (String, String) {
    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        endpoint,
        Some(Cursor::new(fastq_bytes(reads))),
        opts,
        &mut out,
        &mut status,
    )
    .expect("submit failed");
    assert_eq!(
        report.errors,
        0,
        "status:\n{}",
        String::from_utf8_lossy(&status)
    );
    assert!(report.done.is_some(), "missing # done line");
    (
        String::from_utf8(out).unwrap(),
        String::from_utf8(status).unwrap(),
    )
}

#[test]
fn tcp_session_is_byte_identical_to_one_shot() {
    let fx = Fixture::new(80_000);
    let reads = fx.reads(5, 800, 1);
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    assert!(!expected.is_empty());

    let server = fx.start_server(ServiceConfig::default());
    let (got, status) = run_client(server.endpoint(), &reads, &SubmitOptions::default());
    assert_eq!(got, expected, "socket session diverged from one-shot");
    assert!(status.contains("# done reads=5"), "{status}");

    server.request_shutdown();
    let metrics = server.wait();
    assert_eq!(metrics.reads_in, 5);
}

#[test]
fn paf_format_and_backend_are_session_scoped() {
    let fx = Fixture::new(70_000);
    let reads_a = fx.reads(4, 700, 2);
    let reads_b = fx.reads(4, 700, 3);
    let want_a = fx.expected(&reads_a, BackendKind::Edlib, OutputFormat::Paf);
    let want_b = fx.expected(&reads_b, BackendKind::Cpu, OutputFormat::Tsv);

    let server = fx.start_server(ServiceConfig::default());
    let (got_a, status_a) = run_client(
        server.endpoint(),
        &reads_a,
        &SubmitOptions {
            backend: Some(BackendKind::Edlib.into()),
            format: Some(OutputFormat::Paf),
            ..SubmitOptions::default()
        },
    );
    let (got_b, _) = run_client(server.endpoint(), &reads_b, &SubmitOptions::default());
    assert_eq!(got_a, want_a, "PAF/edlib session diverged");
    assert_eq!(got_b, want_b, "default session diverged");
    assert!(status_a.contains("# ok backend edlib"), "{status_a}");
    assert!(status_a.contains("# ok format paf"), "{status_a}");
    // PAF rows parse back and carry strand + reference length.
    let mut strands = std::collections::HashSet::new();
    for line in got_a.lines() {
        let rec = genasm_pipeline::AlignRecord::parse_paf(line).unwrap();
        assert_eq!(rec.tsize, fx.reference.len());
        strands.insert(rec.reverse);
    }
    assert_eq!(strands.len(), 2, "rc_fraction 0.5 should hit both strands");

    server.request_shutdown();
    server.wait();
}

#[test]
fn concurrent_clients_each_get_one_shot_bytes() {
    let fx = Fixture::new(90_000);
    let clients: Vec<(BackendKind, Vec<(String, Seq)>)> = vec![
        (BackendKind::Cpu, fx.reads(4, 650, 11)),
        (BackendKind::Cpu, fx.reads(4, 650, 12)),
        (BackendKind::Edlib, fx.reads(4, 650, 13)),
        (BackendKind::Ksw2, fx.reads(4, 650, 14)),
        (BackendKind::Cpu, fx.reads(4, 650, 15)),
    ];
    let expected: Vec<String> = clients
        .iter()
        .map(|(b, r)| fx.expected(r, *b, OutputFormat::Tsv))
        .collect();

    // Tight batching so the sessions truly share batches in flight.
    let server = fx.start_server(ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 4 * 1024,
            queue_depth: 4,
            dispatchers: 2,
            ..PipelineConfig::default()
        },
        ..ServiceConfig::default()
    });
    let endpoint = server.endpoint().clone();
    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter()
            .map(|(backend, reads)| {
                let endpoint = endpoint.clone();
                let backend = *backend;
                scope.spawn(move || {
                    run_client(
                        &endpoint,
                        reads,
                        &SubmitOptions {
                            backend: Some(backend.into()),
                            ..SubmitOptions::default()
                        },
                    )
                    .0
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, (got, want)) in outputs.iter().zip(&expected).enumerate() {
        assert!(!want.is_empty(), "client {i} expected nothing?");
        assert_eq!(got, want, "client {i} diverged from one-shot output");
    }

    server.request_shutdown();
    let metrics = server.wait();
    assert_eq!(metrics.reads_in, 20);
}

#[test]
fn control_verbs_ping_stats_and_errors() {
    let fx = Fixture::new(40_000);
    let server = fx.start_server(ServiceConfig::default());

    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        server.endpoint(),
        None::<Cursor<Vec<u8>>>,
        &SubmitOptions {
            ping: true,
            stats: true,
            ..SubmitOptions::default()
        },
        &mut out,
        &mut status,
    )
    .unwrap();
    let status = String::from_utf8(status).unwrap();
    assert_eq!(report.errors, 0, "{status}");
    assert!(status.contains("# genasm-server v1 ref=ref"), "{status}");
    assert!(status.contains("# pong"), "{status}");
    assert!(status.contains("# stats sessions=0"), "{status}");
    assert!(out.is_empty(), "verb-only conversation emitted records");

    // Raw conversation: bad verbs and bad settings get described errors
    // without killing the connection.
    let conn = connect(server.endpoint()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting
    writeln!(writer, "FROBNICATE").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("# err") && line.contains("FROBNICATE"),
        "{line}"
    );
    writeln!(writer, "SET backend tpu").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("'cpu'"),
        "bad backend must list choices: {line}"
    );
    writeln!(writer, "PING").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "# pong", "connection survived the errors");
    // Close both halves before wait(): the server joins this
    // connection's thread, which is blocked reading from us.
    drop(writer);
    drop(reader);

    server.request_shutdown();
    server.wait();
}

#[test]
fn shutdown_verb_drains_in_flight_sessions_and_rejects_new_ones() {
    let fx = Fixture::new(80_000);
    let reads = fx.reads(5, 800, 21);
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    let server = fx.start_server(ServiceConfig::default());
    let endpoint = server.endpoint().clone();

    // Client A: open a session and send half the records, keeping the
    // stream open.
    let conn = connect(&endpoint).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting
    writeln!(writer, "BEGIN").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("# ok begin"), "{line}");
    let payload = fastq_bytes(&reads);
    let half = payload.len() / 2;
    writer.write_all(&payload[..half]).unwrap();
    writer.flush().unwrap();

    // Ask for shutdown from a second connection.
    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        &endpoint,
        None::<Cursor<Vec<u8>>>,
        &SubmitOptions {
            shutdown: true,
            ..SubmitOptions::default()
        },
        &mut out,
        &mut status,
    )
    .unwrap();
    assert_eq!(report.errors, 0);
    assert!(String::from_utf8_lossy(&status).contains("# ok draining"));

    // While A is still in flight, a new session must be refused.
    let service = server.service();
    while !service.is_draining() {
        std::thread::yield_now();
    }
    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        &endpoint,
        Some(Cursor::new(fastq_bytes(&fx.reads(1, 500, 99)))),
        &SubmitOptions::default(),
        &mut out,
        &mut status,
    )
    .unwrap();
    assert!(report.errors > 0, "draining server accepted a new session");
    assert!(
        String::from_utf8_lossy(&status).contains("draining"),
        "{}",
        String::from_utf8_lossy(&status)
    );
    assert!(out.is_empty());

    // Client A finishes: its full output must still arrive, then done.
    writer.write_all(&payload[half..]).unwrap();
    writer.flush().unwrap();
    writer.shutdown_write().unwrap();
    let mut got = String::new();
    let mut done = None;
    for line in reader.lines() {
        let line = line.unwrap();
        if line.starts_with("# done") {
            done = Some(line);
        } else if !line.starts_with("# ") {
            got.push_str(&line);
            got.push('\n');
        }
    }
    assert_eq!(got, expected, "drained session lost rows");
    assert!(done.unwrap().contains("reads=5"));

    // The server exits cleanly and the port stops answering.
    let metrics = server.wait();
    assert_eq!(metrics.reads_in, 5);
    assert!(connect(&endpoint).is_err(), "listener still accepting");
}

#[test]
fn input_errors_are_reported_before_done() {
    // A malformed record mid-stream: the server must keep the framing
    // contract — `# err input: …` comes *before* the final `# done`,
    // which is always the last line.
    let fx = Fixture::new(40_000);
    let server = fx.start_server(ServiceConfig::default());
    let conn = connect(server.endpoint()).unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut lines = reader.lines();
    lines.next().unwrap().unwrap(); // greeting
    writeln!(writer, "BEGIN").unwrap();
    assert!(lines.next().unwrap().unwrap().starts_with("# ok begin"));
    // One valid (tiny, unmapped) record, then garbage.
    writer
        .write_all(b"@r1\nACGT\n+\nIIII\nGARBAGE LINE\n")
        .unwrap();
    writer.flush().unwrap();
    writer.shutdown_write().unwrap();
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let err_at = rest
        .iter()
        .position(|l| l.starts_with("# err input:"))
        .unwrap_or_else(|| panic!("no input error reported: {rest:?}"));
    let done_at = rest
        .iter()
        .position(|l| l.starts_with("# done"))
        .unwrap_or_else(|| panic!("no done line: {rest:?}"));
    assert!(err_at < done_at, "error must precede done: {rest:?}");
    assert_eq!(done_at, rest.len() - 1, "done must be last: {rest:?}");
    assert!(rest[done_at].contains("reads=1"), "{rest:?}");

    server.request_shutdown();
    server.wait();
}

#[test]
fn idle_connection_does_not_block_shutdown() {
    let fx = Fixture::new(30_000);
    let server = fx.start_server(ServiceConfig::default());

    // A client that connects, reads the greeting, and then just sits
    // there — no verbs, no session, no disconnect.
    let conn = connect(server.endpoint()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("# genasm-server"), "{line}");

    server.request_shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        tx.send(server.wait()).ok();
    });
    let metrics = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("wait() hung on an idle verb-phase connection");
    assert_eq!(metrics.reads_in, 0);
    drop(reader);
    drop(conn);
}

#[test]
fn unix_socket_round_trip() {
    let fx = Fixture::new(50_000);
    let reads = fx.reads(3, 600, 31);
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    let path = std::env::temp_dir().join(format!("genasm-server-test-{}.sock", std::process::id()));
    let server = Server::start(
        ServerConfig {
            endpoint: Endpoint::Unix(path.clone()),
            default_backend: BackendKind::Cpu.into(),
            default_format: OutputFormat::Tsv,
            idle_timeout: None,
            service: ServiceConfig::default(),
        },
        "ref",
        Reference::single("ref", fx.reference.clone()),
    )
    .expect("unix server start");
    let (got, _) = run_client(server.endpoint(), &reads, &SubmitOptions::default());
    assert_eq!(got, expected);
    server.request_shutdown();
    server.wait();
    assert!(!path.exists(), "socket file cleaned up on shutdown");
}

#[test]
fn session_cap_rejects_over_admission() {
    let fx = Fixture::new(40_000);
    let server = fx.start_server(ServiceConfig {
        max_sessions: 1,
        ..ServiceConfig::default()
    });
    let endpoint = server.endpoint().clone();

    // Occupy the only slot with a held-open session.
    let conn = connect(&endpoint).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    writeln!(writer, "BEGIN").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("# ok begin"), "{line}");

    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        &endpoint,
        Some(Cursor::new(fastq_bytes(&fx.reads(1, 500, 41)))),
        &SubmitOptions::default(),
        &mut out,
        &mut status,
    )
    .unwrap();
    assert!(report.errors > 0, "cap of 1 admitted a second session");
    assert!(
        String::from_utf8_lossy(&status).contains("busy"),
        "{}",
        String::from_utf8_lossy(&status)
    );

    // Release the slot; admission recovers.
    writer.shutdown_write().unwrap();
    let mut drained = String::new();
    for l in reader.lines() {
        drained.push_str(&l.unwrap());
    }
    assert!(drained.contains("# done"));
    let reads = fx.reads(1, 500, 42);
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    let (got, _) = run_client(&endpoint, &reads, &SubmitOptions::default());
    assert_eq!(got, expected);

    server.request_shutdown();
    server.wait();
}

/// The machine-readable STATS formats: one session runs to completion,
/// then a verb-only client asks for `STATS` (line + band counters),
/// `STATS JSON`, and `STATS PROM` and everything must agree with the
/// work the session did.
#[test]
fn stats_json_and_prom_expose_the_live_registry() {
    let fx = Fixture::new(70_000);
    let reads = fx.reads(5, 700, 31);
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    assert!(!expected.is_empty());

    let server = fx.start_server(ServiceConfig::default());
    let (got, _) = run_client(server.endpoint(), &reads, &SubmitOptions::default());
    assert_eq!(got, expected);

    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        server.endpoint(),
        None::<Cursor<Vec<u8>>>,
        &SubmitOptions {
            stats: true,
            stats_json: true,
            stats_prom: true,
            ..SubmitOptions::default()
        },
        &mut out,
        &mut status,
    )
    .unwrap();
    let status = String::from_utf8(status).unwrap();
    assert_eq!(report.errors, 0, "{status}");

    // Classic line, now with the window-engine band counters (the CPU
    // backend ran, so `windows=` must be non-zero).
    let stats_line = status
        .lines()
        .find(|l| l.starts_with("# stats "))
        .expect("no # stats line");
    assert!(stats_line.contains("reads_in=5"), "{stats_line}");
    assert!(stats_line.contains("windows="), "{stats_line}");
    assert!(stats_line.contains("early_term="), "{stats_line}");
    assert!(stats_line.contains("rescued="), "{stats_line}");
    assert!(stats_line.contains("band_skipped="), "{stats_line}");
    assert!(
        !stats_line.contains("windows=0 "),
        "CPU backend ran: {stats_line}"
    );

    // JSON: captured payload parses far enough to carry the schema tag,
    // the server block, and the pipeline counters.
    let json = report.stats_json.as_deref().expect("no stats-json payload");
    assert!(
        json.starts_with("{\"schema\":\"genasm-stats/v1\""),
        "{json}"
    );
    assert!(json.contains("\"reads_in\":5"), "{json}");
    assert!(json.contains("\"records_out\""), "{json}");
    assert!(json.contains("\"latency\""), "{json}");
    assert!(json.contains("\"uptime_ms\""), "{json}");

    // Prometheus: bare exposition lines, counters with _total, the
    // latency histogram with cumulative buckets.
    let prom = report.stats_prom.as_deref().expect("no stats-prom payload");
    assert!(prom.contains("genasm_reads_in_total 5"), "{prom}");
    assert!(
        prom.contains("# TYPE genasm_read_latency_ns histogram"),
        "{prom}"
    );
    assert!(prom.contains("genasm_read_latency_ns_count 5"), "{prom}");
    assert!(prom.contains("genasm_sessions_active 0"), "{prom}");
    assert!(status.contains("# prom-begin"), "{status}");
    assert!(status.contains("# prom-end"), "{status}");

    server.request_shutdown();
    server.wait();
}

/// Regression: a client that uploads a pile of reads and then vanishes
/// without ever reading a byte of output must not cost the server the
/// full alignment bill. The writer thread hits a write error, signals
/// the reader, and the session aborts with most reads never admitted.
#[test]
fn dead_client_does_not_get_all_its_reads_aligned() {
    let fx = Fixture::new(60_000);
    let n_reads = 300usize;
    let reads = fx.reads(n_reads, 600, 51);
    let server = fx.start_server_with_timeout(
        ServiceConfig {
            pipeline: PipelineConfig {
                batch_bases: 2 * 1024,
                queue_depth: 2,
                dispatchers: 1,
                ..PipelineConfig::default()
            },
            // A tight output budget: with no one reading, the session
            // throttles after a handful of reads instead of racing
            // through the whole upload.
            max_session_output_bytes: 16 * 1024,
            max_session_inflight_reads: 4,
            ..ServiceConfig::default()
        },
        std::time::Duration::from_millis(500),
    );

    let conn = connect(server.endpoint()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting
    writeln!(writer, "BEGIN").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("# ok begin"), "{line}");

    // Upload as much of the payload as the throttled server will take
    // without blocking this test forever, then vanish: both halves of
    // the connection drop with output still unread, so the server's
    // next write fails.
    writer
        .set_write_timeout(Some(std::time::Duration::from_millis(300)))
        .unwrap();
    let payload = fastq_bytes(&reads);
    let _ = writer.write_all(&payload);
    drop(writer);
    drop(reader);

    // The session must wind down on its own — no shutdown needed.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let service = server.service();
    while service.active_sessions() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "dead client's session never ended"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    server.request_shutdown();
    let metrics = server.wait();
    assert!(
        (metrics.reads_in as usize) < n_reads,
        "server aligned all {n_reads} reads for a client that never \
         read a byte (reads_in={})",
        metrics.reads_in
    );
}

/// A client that opens a session and then goes silent: the read
/// timeout must abort the session (reporting `# err input: idle
/// timeout …` before the final `# done`), count it in telemetry, and
/// leave the server fully serviceable.
#[test]
fn stalled_client_session_times_out_and_is_reported() {
    let fx = Fixture::new(40_000);
    let server = fx.start_server_with_timeout(
        ServiceConfig::default(),
        std::time::Duration::from_millis(300),
    );

    let conn = connect(server.endpoint()).unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut lines = reader.lines();
    lines.next().unwrap().unwrap(); // greeting
    writeln!(writer, "BEGIN").unwrap();
    assert!(lines.next().unwrap().unwrap().starts_with("# ok begin"));
    // …and now say nothing. The server must end the session itself.
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let err_at = rest
        .iter()
        .position(|l| l.starts_with("# err input:") && l.contains("idle timeout"))
        .unwrap_or_else(|| panic!("no idle-timeout error reported: {rest:?}"));
    let done_at = rest
        .iter()
        .position(|l| l.starts_with("# done"))
        .unwrap_or_else(|| panic!("no done line: {rest:?}"));
    assert!(err_at < done_at, "error must precede done: {rest:?}");
    assert_eq!(done_at, rest.len() - 1, "done must be last: {rest:?}");
    drop(writer);

    assert_eq!(server.service().metrics().sessions_timed_out, 1);

    // The timeout killed one session, not the server: a well-behaved
    // client still gets byte-identical output, and the counter shows
    // up in the Prometheus exposition.
    let reads = fx.reads(2, 500, 61);
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    let (got, _) = run_client(server.endpoint(), &reads, &SubmitOptions::default());
    assert_eq!(got, expected);
    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        server.endpoint(),
        None::<Cursor<Vec<u8>>>,
        &SubmitOptions {
            stats_prom: true,
            ..SubmitOptions::default()
        },
        &mut out,
        &mut status,
    )
    .unwrap();
    let prom = report.stats_prom.as_deref().expect("no stats-prom payload");
    assert!(prom.contains("genasm_sessions_timed_out_total 1"), "{prom}");

    server.request_shutdown();
    server.wait();
}

/// An idle connection in the verb phase gets `# hb` heartbeats instead
/// of a dead socket, and the connection still works afterwards.
#[test]
fn idle_verb_connection_gets_heartbeats_and_stays_usable() {
    let fx = Fixture::new(30_000);
    let server = fx.start_server_with_timeout(
        ServiceConfig::default(),
        std::time::Duration::from_millis(200),
    );

    let conn = connect(server.endpoint()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut writer = conn;
    let mut line = String::new();
    reader.read_line(&mut line).unwrap(); // greeting

    // Say nothing: the next full line the server sends must be a
    // heartbeat (read_line blocks until it arrives).
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "# hb", "expected a heartbeat: {line}");

    // The connection is still a working control channel.
    writeln!(writer, "PING").unwrap();
    loop {
        line.clear();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "connection died");
        if line.trim_end() == "# hb" {
            continue;
        }
        assert_eq!(line.trim_end(), "# pong", "{line}");
        break;
    }
    drop(writer);
    drop(reader);

    server.request_shutdown();
    server.wait();
}

#[test]
fn explain_sessions_stream_provenance_without_perturbing_records() {
    let fx = Fixture::new(80_000);
    let mut reads = fx.reads(4, 700, 21);
    // An unmappable read: still explained, still counted in # done.
    reads.push(("ghost21".to_string(), Seq::new()));
    let expected = fx.expected(&reads, BackendKind::Cpu, OutputFormat::Tsv);
    assert!(!expected.is_empty());

    let server = fx.start_server(ServiceConfig::default());
    let (plain, _) = run_client(server.endpoint(), &reads, &SubmitOptions::default());
    assert_eq!(plain, expected, "baseline session diverged");

    let mut out = Vec::new();
    let mut status = Vec::new();
    let report = submit(
        server.endpoint(),
        Some(Cursor::new(fastq_bytes(&reads))),
        &SubmitOptions {
            explain: true,
            ..SubmitOptions::default()
        },
        &mut out,
        &mut status,
    )
    .expect("submit failed");
    let status = String::from_utf8(status).unwrap();
    assert_eq!(report.errors, 0, "status:\n{status}");
    assert_eq!(
        String::from_utf8(out).unwrap(),
        expected,
        "explain changed the record bytes"
    );
    assert!(status.contains("# ok explain on"), "{status}");
    assert_eq!(
        report.explain.len(),
        reads.len(),
        "one explain line per read:\n{status}"
    );
    for line in &report.explain {
        assert!(
            line.starts_with("{\"schema\":\"genasm-explain/v1\""),
            "{line}"
        );
    }
    for (name, _) in &reads {
        let needle = format!("\"read\":\"{name}\"");
        assert_eq!(
            report
                .explain
                .iter()
                .filter(|l| l.contains(&needle))
                .count(),
            1,
            "read {name} not explained exactly once"
        );
    }
    assert!(
        report
            .explain
            .iter()
            .any(|l| l.contains("\"disposition\":\"unmapped:no_anchors\"")),
        "ghost read's disposition missing"
    );
    assert!(status.contains("# done reads=5 mapped=4"), "{status}");

    server.request_shutdown();
    server.wait();
}

#[test]
fn stats_stream_pushes_parseable_frames_and_survives_unsubscribe() {
    let fx = Fixture::new(60_000);
    let server = fx.start_server(ServiceConfig::default());
    // One completed session so the funnel has content to report.
    let reads = fx.reads(3, 600, 22);
    run_client(server.endpoint(), &reads, &SubmitOptions::default());

    let mut frames = Vec::new();
    let mut status = Vec::new();
    let n = genasm_server::client::stream_stats(server.endpoint(), 20, 3, &mut frames, &mut status)
        .expect("stream failed");
    assert_eq!(n, 3, "status:\n{}", String::from_utf8_lossy(&status));
    let text = String::from_utf8(frames).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    for line in &lines {
        assert!(
            line.starts_with("{\"schema\":\"genasm-stat-frame/v1\""),
            "{line}"
        );
        assert!(line.contains("\"funnel\":{\"reads_in\":3"), "{line}");
        assert!(line.contains("\"interval_ms\":20"), "{line}");
        assert!(line.contains("\"backends\":{"), "{line}");
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "{line}"
        );
    }

    // Dropping the stream connection is the unsubscribe; the server
    // must keep serving afterwards.
    let mut status2 = Vec::new();
    let report = submit(
        server.endpoint(),
        None::<Cursor<Vec<u8>>>,
        &SubmitOptions {
            ping: true,
            ..SubmitOptions::default()
        },
        &mut std::io::sink(),
        &mut status2,
    )
    .expect("ping after unsubscribe");
    assert_eq!(report.errors, 0);
    assert!(String::from_utf8(status2).unwrap().contains("# pong"));

    server.request_shutdown();
    server.wait();
}

#[test]
fn stats_stream_ends_politely_when_the_server_drains() {
    let fx = Fixture::new(50_000);
    let server = fx.start_server(ServiceConfig::default());
    let endpoint = server.endpoint().clone();
    let streamer = std::thread::spawn(move || {
        let mut frames = Vec::new();
        let mut status = Vec::new();
        let n = genasm_server::client::stream_stats(&endpoint, 10, 0, &mut frames, &mut status)
            .expect("stream failed");
        (n, String::from_utf8(status).unwrap())
    });
    // Let at least one frame land, then drain under the streamer.
    std::thread::sleep(std::time::Duration::from_millis(60));
    server.request_shutdown();
    server.wait();
    let (n, status) = streamer.join().unwrap();
    assert!(n >= 1, "no frames before the drain");
    assert!(status.contains("# ok stream-end"), "{status}");
}
