//! Listen/connect endpoints: TCP or Unix-domain sockets behind one
//! seam, so the server, the client, and the tests are transport
//! agnostic.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Where the server listens / the client connects.
///
/// Parsed from `unix:PATH`, `tcp:HOST:PORT`, or a bare `HOST:PORT`
/// (treated as TCP). A TCP port of 0 binds an ephemeral port; the
/// server reports the resolved endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP address (`host:port`).
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parse an endpoint spec.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if addr.contains(':') {
            Ok(Endpoint::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "bad endpoint {s:?}: expected unix:PATH, tcp:HOST:PORT, or HOST:PORT"
            ))
        }
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listening socket.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Bind, returning the listener and the *resolved* endpoint (TCP
    /// port 0 becomes the actual port). A stale Unix socket file at
    /// the path is removed first — the server owns its socket path.
    pub(crate) fn bind(ep: &Endpoint) -> io::Result<(Listener, Endpoint)> {
        match ep {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let actual = Endpoint::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), actual))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), ep.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            )),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One accepted or dialled connection.
pub enum Conn {
    /// A TCP stream.
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

/// Dial an endpoint.
pub fn connect(ep: &Endpoint) -> io::Result<Conn> {
    match ep {
        Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Conn::Tcp),
        #[cfg(unix)]
        Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
        #[cfg(not(unix))]
        Endpoint::Unix(_) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not supported on this platform",
        )),
    }
}

impl Conn {
    /// A second handle to the same socket (separate read/write sides).
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Half-close the write side: the peer's reader sees EOF while the
    /// read side stays open. This is the protocol's end-of-records
    /// framing.
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(Shutdown::Write),
        }
    }

    /// Half-close the read side: a thread blocked reading this socket
    /// sees EOF, while writes continue to flow. The server uses this
    /// at shutdown to unblock idle connections without truncating
    /// their in-flight responses.
    pub fn shutdown_read(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Read),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(Shutdown::Read),
        }
    }

    /// Bound how long a read may block (`None` = forever). A timed-out
    /// read fails with `WouldBlock` or `TimedOut` without closing the
    /// socket — the server's idle-timeout seam. Applies to the
    /// underlying socket, so clones share the setting.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Bound how long a write may block when the peer stops reading
    /// (`None` = forever). A write that makes zero progress for the
    /// whole window fails with `WouldBlock` or `TimedOut`; partial
    /// progress resets the clock.
    pub fn set_write_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_specs_parse() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:4321").unwrap(),
            Endpoint::Tcp("127.0.0.1:4321".to_string())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:0").unwrap(),
            Endpoint::Tcp("127.0.0.1:0".to_string())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/g.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/g.sock"))
        );
        assert!(Endpoint::parse("nonsense").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn endpoint_display_round_trips() {
        for spec in ["tcp:127.0.0.1:80", "unix:/tmp/x.sock"] {
            let ep = Endpoint::parse(spec).unwrap();
            assert_eq!(ep.to_string(), spec);
            assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
        }
    }
}
