//! The line-delimited wire protocol.
//!
//! One connection = one session. All traffic is UTF-8 lines.
//!
//! **Client → server.** A preamble of control verbs, then `BEGIN`,
//! then raw FASTA/FASTQ records, terminated by half-closing the write
//! side of the socket (there is no in-band terminator, so record
//! payloads can never collide with protocol framing):
//!
//! ```text
//! SET backend cpu|gpu-sim|edlib|ksw2|auto     pick this session's backend
//! SET format tsv|paf                          pick this session's output format
//! SET explain on|off                          stream per-read provenance lines
//! PING                                        liveness probe
//! STATS                                       one-line server-wide counters
//! STATS JSON                                  live registry snapshot as one JSON line
//! STATS PROM                                  Prometheus text exposition
//! STATS STREAM <ms>                           push stat frames every <ms> milliseconds
//! SHUTDOWN                                    ask the server to drain and exit
//! BEGIN                                       end of preamble, records follow
//! ```
//!
//! **Server → client.** Status lines are prefixed `# ` so they can
//! never be confused with records; every verb gets exactly one reply
//! (`# ok …`, `# pong`, `# stats …`, or `# err …`). After `BEGIN`, the
//! response stream carries alignment records (bare TSV/PAF lines,
//! byte-identical to `genasm align` on the same reads), interleaved
//! with `# err read …` lines for failed reads, and ends with
//! `# done …` followed by the server closing the connection.
//!
//! When the server runs with an idle timeout, it may interleave `# hb`
//! heartbeat lines at any point — in the verb loop while waiting for a
//! slow preamble, or in the response stream while the pipeline is
//! quiet. Clients must ignore them (they are not a reply to any verb).
//! The timeout also adds `# err` variants a robust client should
//! expect: `# err input: idle timeout …` when the client went silent
//! mid-upload (the session is aborted but still ends with `# done`),
//! and `# err overflow: …` when the session was evicted under the
//! server's `evict` output-overflow policy. Free-text payloads of
//! `# err read`/`# err input` lines (read names, parser messages) are
//! backslash-escaped like record name columns (`\t`, `\n`, `\r`, `\\`)
//! so hostile content cannot forge a line boundary.
//!
//! `SET explain on` opts the session into per-read provenance: after
//! `BEGIN`, one `# explain {json}` status line per submitted read
//! (schema `genasm-explain/v1`), interleaved with the record stream.
//! Explaining is passive — the record lines stay byte-identical to a
//! session without it.
//!
//! `STATS STREAM <ms>` turns the connection into a push feed: the
//! server emits one `# stat-frame {json}` line (schema
//! `genasm-stat-frame/v1` — uptime, sessions, the read-decision
//! funnel, interval rates, per-backend latency quantiles, slowest
//! reads) immediately and then every `<ms>` milliseconds until the
//! client closes the connection or the server starts draining (the
//! feed then ends with `# ok stream-end`). Records cannot follow —
//! the stream replaces the session.

use genasm_pipeline::{BackendChoice, OutputFormat};

/// Prefix of every non-record line the server emits.
pub const STATUS_PREFIX: &str = "# ";

/// Prefix of error status lines.
pub const ERR_PREFIX: &str = "# err";

/// Prefix of the final per-session summary line.
pub const DONE_PREFIX: &str = "# done";

/// The idle heartbeat line. Not a reply to any verb — clients skip it
/// wherever it appears.
pub const HB_LINE: &str = "# hb";

/// Exposition format of a `STATS` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Bare `STATS`: the classic one-line `# stats …` summary.
    Line,
    /// `STATS JSON`: one `# stats-json {…}` line with the full live
    /// registry snapshot, per-session and per-backend breakdowns.
    Json,
    /// `STATS PROM`: Prometheus text exposition, one `# prom …` line
    /// per metric line, bracketed by `# prom-begin` / `# prom-end`.
    Prom,
}

/// A parsed client control verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verb {
    /// `SET backend <kind|auto>`. `auto` hands the session's batches
    /// to the server's adaptive router.
    SetBackend(BackendChoice),
    /// `SET format <fmt>`.
    SetFormat(OutputFormat),
    /// `SET explain on|off`.
    SetExplain(bool),
    /// `BEGIN` — records follow.
    Begin,
    /// `PING`.
    Ping,
    /// `STATS [JSON|PROM]`.
    Stats(StatsFormat),
    /// `STATS STREAM <ms>` — push `# stat-frame` lines at this
    /// interval until the client hangs up or the server drains.
    StatsStream(u64),
    /// `SHUTDOWN` — drain and exit.
    Shutdown,
}

/// Parse one preamble line.
pub fn parse_verb(line: &str) -> Result<Verb, String> {
    let mut it = line.split_whitespace();
    let word = it.next().unwrap_or("");
    let verb = match word {
        "BEGIN" => Verb::Begin,
        "PING" => Verb::Ping,
        "STATS" => match it.next() {
            None => Verb::Stats(StatsFormat::Line),
            Some("JSON") => Verb::Stats(StatsFormat::Json),
            Some("PROM") => Verb::Stats(StatsFormat::Prom),
            Some("STREAM") => {
                let ms = it.next().ok_or("STATS STREAM needs an interval in ms")?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad STATS STREAM interval {ms:?}"))?;
                if ms == 0 {
                    return Err("STATS STREAM interval must be at least 1 ms".to_string());
                }
                Verb::StatsStream(ms)
            }
            Some(other) => {
                return Err(format!(
                    "unknown STATS format {other:?}; valid formats are JSON, PROM, STREAM <ms>"
                ))
            }
        },
        "SHUTDOWN" => Verb::Shutdown,
        "SET" => {
            let key = it.next().ok_or("SET needs a key and a value")?;
            let value = it
                .next()
                .ok_or_else(|| format!("SET {key} needs a value"))?;
            match key {
                "backend" => Verb::SetBackend(value.parse().map_err(|e| format!("{e}"))?),
                "format" => Verb::SetFormat(value.parse().map_err(|e| format!("{e}"))?),
                "explain" => match value {
                    "on" => Verb::SetExplain(true),
                    "off" => Verb::SetExplain(false),
                    other => {
                        return Err(format!(
                            "bad explain value {other:?}; valid values are 'on', 'off'"
                        ))
                    }
                },
                other => {
                    return Err(format!(
                        "unknown setting {other:?}; valid settings are 'backend', 'format', \
                         'explain'"
                    ))
                }
            }
        }
        other => {
            return Err(format!(
                "unknown verb {other:?}; valid verbs are SET, BEGIN, PING, STATS, SHUTDOWN"
            ))
        }
    };
    if let Some(junk) = it.next() {
        return Err(format!("unexpected trailing argument {junk:?}"));
    }
    Ok(verb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_verb("BEGIN").unwrap(), Verb::Begin);
        assert_eq!(parse_verb("PING").unwrap(), Verb::Ping);
        assert_eq!(parse_verb("STATS").unwrap(), Verb::Stats(StatsFormat::Line));
        assert_eq!(
            parse_verb("STATS JSON").unwrap(),
            Verb::Stats(StatsFormat::Json)
        );
        assert_eq!(
            parse_verb("STATS PROM").unwrap(),
            Verb::Stats(StatsFormat::Prom)
        );
        assert_eq!(parse_verb("SHUTDOWN").unwrap(), Verb::Shutdown);
        assert_eq!(
            parse_verb("SET backend edlib").unwrap(),
            Verb::SetBackend(genasm_pipeline::BackendKind::Edlib.into())
        );
        assert_eq!(
            parse_verb("SET backend auto").unwrap(),
            Verb::SetBackend(BackendChoice::Auto)
        );
        assert_eq!(
            parse_verb("SET format paf").unwrap(),
            Verb::SetFormat(OutputFormat::Paf)
        );
        assert_eq!(
            parse_verb("SET explain on").unwrap(),
            Verb::SetExplain(true)
        );
        assert_eq!(
            parse_verb("SET explain off").unwrap(),
            Verb::SetExplain(false)
        );
        assert_eq!(
            parse_verb("STATS STREAM 250").unwrap(),
            Verb::StatsStream(250)
        );
    }

    #[test]
    fn bad_verbs_are_described() {
        assert!(parse_verb("FROBNICATE").unwrap_err().contains("FROBNICATE"));
        assert!(parse_verb("SET").unwrap_err().contains("key"));
        assert!(parse_verb("SET backend").unwrap_err().contains("value"));
        let e = parse_verb("SET backend tpu").unwrap_err();
        assert!(e.contains("'cpu'") && e.contains("'gpu-sim'"), "{e}");
        let e = parse_verb("SET format sam").unwrap_err();
        assert!(e.contains("'tsv'") && e.contains("'paf'"), "{e}");
        assert!(parse_verb("SET color blue").unwrap_err().contains("color"));
        assert!(parse_verb("SET explain maybe")
            .unwrap_err()
            .contains("maybe"));
        assert!(parse_verb("BEGIN now").unwrap_err().contains("trailing"));
        assert!(parse_verb("STATS XML").unwrap_err().contains("XML"));
        assert!(parse_verb("STATS JSON extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_verb("STATS STREAM").unwrap_err().contains("interval"));
        assert!(parse_verb("STATS STREAM fast")
            .unwrap_err()
            .contains("fast"));
        assert!(parse_verb("STATS STREAM 0")
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse_verb("STATS STREAM 100 extra")
            .unwrap_err()
            .contains("trailing"));
    }
}
