//! The protocol client behind `genasm submit` / `genasm ctl` (and the
//! test suites).
//!
//! [`submit`] speaks the whole protocol over one connection: preamble
//! verbs, `BEGIN`, raw record bytes, half-close, then the response.
//! Record lines go to `out` verbatim — so a client's stdout is
//! byte-identical to `genasm align` on the same reads — and every
//! `# `-prefixed status line goes to `status`.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::endpoint::{connect, Endpoint};
use crate::protocol::{DONE_PREFIX, ERR_PREFIX, HB_LINE, STATUS_PREFIX};
use genasm_pipeline::{BackendChoice, OutputFormat};

/// What to ask of the server.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// `SET backend …` before `BEGIN` (server default otherwise).
    /// [`BackendChoice::Auto`] asks for the server's adaptive router.
    pub backend: Option<BackendChoice>,
    /// `SET format …` before `BEGIN` (server default otherwise).
    pub format: Option<OutputFormat>,
    /// Send `PING` (liveness probe) in the preamble.
    pub ping: bool,
    /// Send `STATS` in the preamble.
    pub stats: bool,
    /// Send `STATS JSON` in the preamble (one `# stats-json {…}` reply
    /// line; the JSON payload is also captured in the report).
    pub stats_json: bool,
    /// Send `STATS PROM` in the preamble (a `# prom-begin` / `# prom …`
    /// / `# prom-end` block; the bare exposition lines are captured in
    /// the report).
    pub stats_prom: bool,
    /// Send `SET explain on` in the preamble: the session streams one
    /// `# explain {json}` provenance line per read, captured in
    /// [`SubmitReport::explain`].
    pub explain: bool,
    /// Send `SHUTDOWN` and return (no records are sent).
    pub shutdown: bool,
}

/// What came back.
#[derive(Debug, Clone, Default)]
pub struct SubmitReport {
    /// Record lines forwarded to `out`.
    pub records: u64,
    /// `# err …` lines seen (verb failures, failed reads, admission).
    pub errors: u64,
    /// The final `# done …` line, when a session ran to completion.
    pub done: Option<String>,
    /// The JSON payload of a `STATS JSON` reply (prefix stripped).
    pub stats_json: Option<String>,
    /// The Prometheus exposition of a `STATS PROM` reply (prefixes
    /// stripped, one metric line per element).
    pub stats_prom: Option<String>,
    /// The JSON payloads of `# explain …` provenance lines, in read
    /// order (prefix stripped; empty unless `SET explain on` ran).
    pub explain: Vec<String>,
}

/// Run one protocol conversation. `reads` supplies the raw FASTA/FASTQ
/// bytes to stream after `BEGIN`; pass `None` for verb-only
/// conversations (ping/stats/shutdown).
pub fn submit<R: Read>(
    endpoint: &Endpoint,
    reads: Option<R>,
    opts: &SubmitOptions,
    out: &mut dyn Write,
    status: &mut dyn Write,
) -> io::Result<SubmitReport> {
    let conn = connect(endpoint)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut report = SubmitReport::default();

    let read_status_line = |reader: &mut BufReader<_>,
                            report: &mut SubmitReport,
                            status: &mut dyn Write|
     -> io::Result<String> {
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-handshake",
                ));
            }
            // Heartbeats are not replies; the real reply follows.
            if line.trim_end() != HB_LINE {
                break;
            }
        }
        let line = line.trim_end().to_string();
        if line.starts_with(ERR_PREFIX) {
            report.errors += 1;
        }
        writeln!(status, "{line}")?;
        Ok(line)
    };

    // Greeting.
    read_status_line(&mut reader, &mut report, status)?;

    let verb = |writer: &mut BufWriter<_>,
                reader: &mut BufReader<_>,
                report: &mut SubmitReport,
                status: &mut dyn Write,
                line: &str|
     -> io::Result<String> {
        writeln!(writer, "{line}")?;
        writer.flush()?;
        read_status_line(reader, report, status)
    };

    if opts.ping {
        verb(&mut writer, &mut reader, &mut report, status, "PING")?;
    }
    if opts.stats {
        verb(&mut writer, &mut reader, &mut report, status, "STATS")?;
    }
    if opts.stats_json {
        let reply = verb(&mut writer, &mut reader, &mut report, status, "STATS JSON")?;
        if let Some(json) = reply.strip_prefix("# stats-json ") {
            report.stats_json = Some(json.to_string());
        }
    }
    if opts.stats_prom {
        let first = verb(&mut writer, &mut reader, &mut report, status, "STATS PROM")?;
        // The exposition is multi-line: `# prom-begin`, one `# prom …`
        // per metric line, `# prom-end`. An `# err …` reply is a single
        // line and is already handled by `verb`.
        if first == "# prom-begin" {
            let mut body = String::new();
            loop {
                let line = read_status_line(&mut reader, &mut report, status)?;
                if line == "# prom-end" {
                    break;
                }
                if let Some(metric) = line.strip_prefix("# prom ") {
                    body.push_str(metric);
                    body.push('\n');
                }
            }
            report.stats_prom = Some(body);
        }
    }
    if opts.shutdown {
        verb(&mut writer, &mut reader, &mut report, status, "SHUTDOWN")?;
        return Ok(report);
    }
    if let Some(backend) = opts.backend {
        let line = format!("SET backend {backend}");
        verb(&mut writer, &mut reader, &mut report, status, &line)?;
    }
    if let Some(format) = opts.format {
        let line = format!("SET format {format}");
        verb(&mut writer, &mut reader, &mut report, status, &line)?;
    }
    if opts.explain {
        verb(
            &mut writer,
            &mut reader,
            &mut report,
            status,
            "SET explain on",
        )?;
    }
    let Some(mut reads) = reads else {
        return Ok(report); // verb-only conversation
    };
    let begin_reply = verb(&mut writer, &mut reader, &mut report, status, "BEGIN")?;
    if begin_reply.starts_with(ERR_PREFIX) {
        return Ok(report); // admission refused; server closes
    }

    // Stream the payload, then half-close: that is the end-of-records
    // framing. The server streams rows back the whole time; they wait
    // in socket buffers until the drain loop below. An upload error is
    // tolerated, not propagated: it usually means the server aborted
    // the session (e.g. a parse error) and its diagnostic — plus any
    // rows already produced — is waiting on the read side; bailing out
    // here would throw that away for a bare "broken pipe".
    let upload: io::Result<()> = (|| {
        io::copy(&mut reads, &mut writer)?;
        writer.flush()?;
        writer.get_ref().shutdown_write()
    })();
    if upload.is_err() {
        report.errors += 1;
        writeln!(status, "# err upload interrupted; draining server response")?;
    }

    // Drain the response until the server closes the connection.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.starts_with(STATUS_PREFIX) {
            if trimmed.starts_with(ERR_PREFIX) {
                report.errors += 1;
            }
            if trimmed.starts_with(DONE_PREFIX) {
                report.done = Some(trimmed.to_string());
            }
            if let Some(json) = trimmed.strip_prefix("# explain ") {
                report.explain.push(json.to_string());
            }
            writeln!(status, "{trimmed}")?;
        } else {
            report.records += 1;
            writeln!(out, "{trimmed}")?;
        }
    }
    Ok(report)
}

/// Consume a `STATS STREAM` push feed (the `genasm ctl top` client):
/// connect, request one frame every `interval_ms`, and write each
/// frame's bare JSON payload to `out` (one `genasm-stat-frame/v1`
/// object per line — pipes straight into `jq`). Protocol chatter
/// (greeting, heartbeats, `# ok stream-end`) goes to `status`.
///
/// Stops after `max_frames` frames (`0` = stream until the server
/// ends the feed) by dropping the connection — that is the protocol's
/// unsubscribe. Returns the number of frames received; an `# err …`
/// reply to the verb surfaces as [`io::ErrorKind::InvalidData`].
pub fn stream_stats(
    endpoint: &Endpoint,
    interval_ms: u64,
    max_frames: u64,
    out: &mut dyn Write,
    status: &mut dyn Write,
) -> io::Result<u64> {
    let conn = connect(endpoint)?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    writeln!(writer, "STATS STREAM {interval_ms}")?;
    writer.flush()?;

    let mut frames = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // server ended the feed (drain) — not an error
        }
        let trimmed = line.trim_end();
        if let Some(json) = trimmed.strip_prefix("# stat-frame ") {
            writeln!(out, "{json}")?;
            out.flush()?;
            frames += 1;
            if max_frames > 0 && frames >= max_frames {
                break; // dropping the connection unsubscribes
            }
            continue;
        }
        if trimmed.starts_with(ERR_PREFIX) {
            writeln!(status, "{trimmed}")?;
            return Err(io::Error::new(io::ErrorKind::InvalidData, trimmed));
        }
        if !trimmed.is_empty() {
            writeln!(status, "{trimmed}")?;
        }
    }
    Ok(frames)
}
