//! # genasm-server
//!
//! The long-lived alignment service: load the reference and its
//! sharded minimizer index **once**, keep the streaming pipeline's
//! stages resident, and serve any number of concurrent client
//! sessions over a TCP or Unix-domain socket.
//!
//! ```text
//!             ┌─ conn thread ── verb loop ─ BEGIN ─ FASTX parse ─┐ submit
//!  client A ──┤                                                  ├────────┐
//!             └─ writer thread ◄─ session events ◄───────────────┘        │
//!             ┌─ conn thread ─ ...                                        ▼
//!  client B ──┤                                    ┌──────────────────────────────┐
//!             └─ writer thread ◄───────────────────┤  PipelineService (resident)  │
//!                                                  │  shared task queue → batches │
//!  genasm submit ──► SET/BEGIN/records ──────────► │  → backends → ordered sink   │
//!                                                  └──────────────────────────────┘
//! ```
//!
//! The heavy lifting lives in [`genasm_pipeline::PipelineService`]:
//! one bounded task queue shared by every session gives *server-wide*
//! admission control (peak resident bases obey
//! [`genasm_pipeline::ServiceConfig::resident_bases_bound`] no matter
//! how many clients connect), and the per-session reorder seam keeps
//! each client's record stream byte-identical to a one-shot
//! `genasm align` over that client's reads. This crate adds the
//! transport: the listener, the line protocol ([`protocol`]), the
//! per-connection threads ([`session`]), graceful drain (`SHUTDOWN`
//! verb or [`Server::request_shutdown`]), and the [`client`] used by
//! `genasm submit` / `genasm ctl` and CI.

pub mod client;
pub mod endpoint;
pub mod protocol;
mod session;

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use align_core::Reference;
use genasm_pipeline::{
    BackendChoice, OutputFormat, PipelineMetrics, PipelineService, ServiceConfig,
};

pub use endpoint::{connect, Conn, Endpoint};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Backend choice used by sessions that don't `SET backend`
    /// (a fixed kind, or `auto` for adaptive routing).
    pub default_backend: BackendChoice,
    /// Output format for sessions that don't `SET format`.
    pub default_format: OutputFormat,
    /// How long a connection may go silent before the server acts:
    /// in the verb loop an idle client is sent a `# hb` heartbeat (and
    /// the connection closes once the heartbeat fails to deliver); in
    /// the streaming phase a client that sends nothing for this long
    /// has its session aborted (`# err input: idle timeout …`, then
    /// `# done`), and a client that stops *reading* for this long is
    /// treated as dead by the writer side. `None` disables all of it.
    pub idle_timeout: Option<std::time::Duration>,
    /// The resident pipeline service underneath all sessions.
    pub service: ServiceConfig,
}

/// Shared state between the accept loop, connection threads, and the
/// owner waiting in [`Server::wait`].
pub(crate) struct ServerShared {
    pub(crate) service: PipelineService,
    pub(crate) default_backend: BackendChoice,
    pub(crate) default_format: OutputFormat,
    pub(crate) idle_timeout: Option<std::time::Duration>,
    endpoint: Endpoint,
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Accept loop exit flag (set after the service has drained).
    stopped: AtomicBool,
    /// One entry per live connection: the thread plus a slot holding a
    /// socket handle `wait` can half-close to unblock an idle reader.
    /// The connection thread clears its slot on exit (a lingering
    /// clone would keep the socket open and rob the client of its
    /// EOF), and finished entries are reaped on every accept so a
    /// long-lived server does not accumulate a handle per connection
    /// ever served.
    conns: Mutex<Vec<(JoinHandle<()>, ConnWatch)>>,
}

/// A shared slot holding a spare handle to a connection's socket; the
/// connection thread clears it on exit, `Server::wait` half-closes
/// whatever is left to unblock idle readers.
type ConnWatch = Arc<Mutex<Option<Conn>>>;

impl ServerShared {
    fn request_shutdown(&self) {
        // Refuse new sessions from this instant, even before the
        // owner's `wait` starts the drain proper.
        self.service.begin_drain();
        let mut flag = self.shutdown.lock().unwrap();
        *flag = true;
        drop(flag);
        self.shutdown_cv.notify_all();
    }
}

/// A running server. Start it, then block in [`Server::wait`] until a
/// shutdown is requested (by a client's `SHUTDOWN` verb or
/// [`Server::request_shutdown`]); `wait` drains in-flight sessions and
/// returns the final service metrics.
pub struct Server {
    shared: Arc<ServerShared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind the endpoint, start the resident pipeline service —
    /// consuming the (possibly multi-contig) reference, whose only
    /// resident copy becomes the index's shard-local slices — and
    /// begin accepting connections.
    pub fn start(cfg: ServerConfig, ref_label: &str, reference: Reference) -> io::Result<Server> {
        let (listener, actual) = endpoint::Listener::bind(&cfg.endpoint)?;
        let service = PipelineService::start(ref_label, reference, cfg.service);
        let shared = Arc::new(ServerShared {
            service,
            default_backend: cfg.default_backend,
            default_format: cfg.default_format,
            idle_timeout: cfg.idle_timeout,
            endpoint: actual,
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            stopped: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let sh = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(listener, &sh));
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
        })
    }

    /// The resolved listen endpoint (TCP port 0 becomes the bound
    /// port) — dial this to connect.
    pub fn endpoint(&self) -> &Endpoint {
        &self.shared.endpoint
    }

    /// The resident service (metrics, admission state) — mainly for
    /// tests and the `STATS` verb.
    pub fn service(&self) -> &PipelineService {
        &self.shared.service
    }

    /// Ask the server to drain and exit, as the `SHUTDOWN` verb does.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until shutdown is requested, then drain: in-flight
    /// sessions finish, new sessions are refused (`# err service is
    /// draining`), the listener closes, and every thread is joined.
    /// Returns the final service-wide metrics.
    pub fn wait(mut self) -> PipelineMetrics {
        {
            let mut flag = self.shared.shutdown.lock().unwrap();
            while !*flag {
                flag = self.shared.shutdown_cv.wait(flag).unwrap();
            }
        }
        // Drain the pipeline service first: stops admitting sessions
        // (connections still get a polite "# err service is draining")
        // and waits for the open ones to finish.
        let metrics = self.shared.service.shutdown();
        // Now stop the accept loop: set the flag, then wake the
        // blocking accept with a throwaway connection.
        self.shared.stopped.store(true, Ordering::SeqCst);
        let _ = endpoint::connect(&self.shared.endpoint);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Unblock idle connections (a client parked in the verb loop
        // would otherwise hold its read forever) by closing the read
        // side only — in-flight response writes still complete — then
        // join every connection thread.
        let conns = std::mem::take(&mut *self.shared.conns.lock().unwrap());
        for (h, slot) in conns {
            if let Some(sock) = slot.lock().unwrap().take() {
                let _ = sock.shutdown_read();
            }
            let _ = h.join();
        }
        if let Endpoint::Unix(path) = &self.shared.endpoint {
            let _ = std::fs::remove_file(path);
        }
        metrics
    }
}

fn accept_loop(listener: endpoint::Listener, shared: &Arc<ServerShared>) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (e.g. fd exhaustion) must
                // not busy-spin: back off briefly so the connection
                // threads holding the resources can make progress.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.stopped.load(Ordering::SeqCst) {
            return; // the wake-up connection from Server::wait
        }
        let slot = Arc::new(Mutex::new(conn.try_clone().ok()));
        let thread_slot = Arc::clone(&slot);
        let sh = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let outcome = session::handle_conn(conn, &sh);
            // Release the watch handle: every fd to this socket must
            // close for the client to see EOF.
            thread_slot.lock().unwrap().take();
            match outcome {
                Ok(session::ConnOutcome::ShutdownRequested) => sh.request_shutdown(),
                Ok(session::ConnOutcome::Done) => {}
                Err(_) => {} // client vanished mid-conversation
            }
        });
        let mut conns = shared.conns.lock().unwrap();
        // Reap finished connections so the registry tracks live ones,
        // not every connection ever accepted.
        conns.retain(|(h, _)| !h.is_finished());
        conns.push((handle, slot));
    }
}
