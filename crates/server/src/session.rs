//! Per-connection protocol handler.
//!
//! Each accepted connection runs on its own thread: a verb loop until
//! `BEGIN`, then the streaming phase — the connection thread parses
//! FASTA/FASTQ records off the socket and submits them to the shared
//! [`genasm_pipeline::PipelineService`], while a writer thread drains
//! the session's events back to the client. The two halves are
//! independent, so responses stream while the client is still
//! uploading, and both directions are backpressured: a full shared
//! task queue (or this session hitting one of its per-session caps)
//! blocks `submit`, which stops this thread reading the socket and
//! propagates to the client's TCP window; a receiver that falls behind
//! by more than `ServiceConfig::max_session_output_bytes` throttles or
//! evicts the session per `ServiceConfig::overflow` — the sink itself
//! never blocks on one slow client.
//!
//! Adversarial clients are bounded in time as well as space. With an
//! idle timeout configured, a client that goes silent in the verb loop
//! gets `# hb` heartbeats (a failed heartbeat ends the connection),
//! one that goes silent mid-upload has its session aborted
//! (`# err input: idle timeout …`, then the usual `# done` framing),
//! and one that stops *reading* kills the writer thread via the write
//! timeout — which this thread notices and stops submitting, so a dead
//! client cannot keep burning backend time on work no one will see.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use genasm_pipeline::{
    escape_name, AdmissionError, OutputFormat, ReadInput, RecvOutcome, SessionEvent,
    SessionReceiver,
};
use readsim::{FastxError, FastxReader};

use crate::endpoint::Conn;
use crate::protocol::{parse_verb, StatsFormat, Verb, HB_LINE};
use crate::ServerShared;

/// What the connection asked of the server beyond its own session.
pub(crate) enum ConnOutcome {
    /// Plain session (or verb-only connection).
    Done,
    /// The client sent `SHUTDOWN`: drain and exit.
    ShutdownRequested,
}

/// A read that hit the socket's receive or send timeout surfaces as
/// `WouldBlock` (unix, via `SO_RCVTIMEO`) or `TimedOut` (windows).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The status line for a read that found no alignment. The name is
/// escaped exactly like record name columns, so a read named
/// `evil\nBEGIN` cannot forge protocol lines.
fn status_err_read(read: &str) -> String {
    format!(
        "# err read {}: no alignment within the edit budget",
        escape_name(read)
    )
}

/// Serve one connection to completion.
pub(crate) fn handle_conn(conn: Conn, srv: &ServerShared) -> io::Result<ConnOutcome> {
    if let Some(t) = srv.idle_timeout {
        // Socket-level, shared by the clones below: bounds both a
        // silent client (read side) and one that stopped reading our
        // responses (write side).
        conn.set_read_timeout(Some(t))?;
        conn.set_write_timeout(Some(t))?;
    }
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut backend = srv.default_backend;
    let mut format = srv.default_format;
    let mut explain = false;

    writeln!(
        writer,
        "# genasm-server v1 ref={} backend={backend} format={format}",
        srv.service.ref_name()
    )?;
    writer.flush()?;

    // Verb loop: one reply per line, until BEGIN or EOF.
    let mut line = String::new();
    loop {
        line.clear();
        // A timed-out read_line may leave a partial line in `line`;
        // the retry appends the rest, so framing survives heartbeats.
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e) if is_timeout(&e) => {
                    writeln!(writer, "{HB_LINE}")?;
                    writer.flush()?; // failure = client gone; drop the conn
                }
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            return Ok(ConnOutcome::Done); // client left without a session
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        match parse_verb(trimmed) {
            Err(msg) => writeln!(writer, "# err {msg}")?,
            Ok(Verb::SetBackend(kind)) => {
                backend = kind;
                writeln!(writer, "# ok backend {backend}")?;
            }
            Ok(Verb::SetFormat(fmt)) => {
                format = fmt;
                writeln!(writer, "# ok format {format}")?;
            }
            Ok(Verb::SetExplain(on)) => {
                explain = on;
                writeln!(writer, "# ok explain {}", if on { "on" } else { "off" })?;
            }
            Ok(Verb::Ping) => writeln!(writer, "# pong")?,
            Ok(Verb::Stats(fmt)) => write_stats(&mut writer, srv, fmt)?,
            Ok(Verb::StatsStream(ms)) => {
                stream_stats(&mut writer, srv, ms)?;
                return Ok(ConnOutcome::Done);
            }
            Ok(Verb::Shutdown) => {
                writeln!(writer, "# ok draining")?;
                writer.flush()?;
                return Ok(ConnOutcome::ShutdownRequested);
            }
            Ok(Verb::Begin) => break,
        }
        writer.flush()?;
    }

    // Streaming phase: admission, then records in / rows out.
    let (mut session, receiver) = match srv.service.open_session(backend) {
        Ok(pair) => pair,
        Err(e @ AdmissionError::Draining) | Err(e @ AdmissionError::Busy { .. }) => {
            writeln!(writer, "# err {e}")?;
            writer.flush()?;
            return Ok(ConnOutcome::Done);
        }
    };
    if explain {
        session.set_explain(true);
    }
    writeln!(writer, "# ok begin backend={backend} format={format}")?;
    writer.flush()?;

    // The input-error slot: set by this thread *before* finish(), read
    // by the writer thread *at* the End event — so the error line is
    // emitted before `# done`, keeping the documented framing (the
    // response always ends with `# done`, then the connection closes).
    let input_err: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    // Raised by the writer thread when its socket writes fail: the
    // client stopped reading (or vanished), so submitting the rest of
    // the upload would burn backend time on work no one will see.
    let writer_dead = Arc::new(AtomicBool::new(false));
    let err_slot = Arc::clone(&input_err);
    let dead_flag = Arc::clone(&writer_dead);
    let heartbeat = srv.idle_timeout;
    let writer_thread = std::thread::spawn(move || {
        let res = drain_events(receiver, writer, format, &err_slot, heartbeat);
        if res.is_err() {
            dead_flag.store(true, Ordering::SeqCst);
        }
        res
    });

    // Parse records off the socket until the client half-closes.
    for rec in FastxReader::new(&mut reader) {
        if writer_dead.load(Ordering::SeqCst) {
            *input_err.lock().unwrap() =
                Some("client stopped reading; aborting session".to_string());
            break;
        }
        match rec {
            Ok(r) => {
                let read = ReadInput {
                    name: r.name,
                    seq: r.seq,
                };
                if let Err(e) = session.submit(read) {
                    *input_err.lock().unwrap() = Some(e.to_string());
                    break;
                }
            }
            Err(FastxError::Io(ref e)) if is_timeout(e) => {
                // The client went silent mid-upload: abort the session
                // rather than pin its slot (and its buffered state)
                // forever. The drain still completes normally.
                srv.service.note_session_timeout();
                let ms = srv.idle_timeout.map_or(0, |t| t.as_millis());
                *input_err.lock().unwrap() = Some(format!(
                    "idle timeout: no data for {ms}ms; aborting session"
                ));
                break;
            }
            Err(e) => {
                *input_err.lock().unwrap() = Some(e.to_string());
                break;
            }
        }
    }
    session.finish();

    let mut writer = writer_thread
        .join()
        .expect("session writer thread panicked")?;
    writer.flush()?;
    Ok(ConnOutcome::Done)
}

/// Answer one `STATS` verb in the requested exposition format.
///
/// The classic line format includes the engine's band counters
/// (`windows=`, `early_term=`, `rescued=`, `band_skipped=`) so an
/// operator can see early-termination effectiveness without opening a
/// JSON snapshot; they read zero until the first batch completes (the
/// engine merges stats batch-atomically).
fn write_stats(
    writer: &mut BufWriter<Conn>,
    srv: &ServerShared,
    fmt: StatsFormat,
) -> io::Result<()> {
    match fmt {
        StatsFormat::Line => {
            let m = srv.service.metrics();
            let eng = m.engine.unwrap_or_default();
            writeln!(
                writer,
                "# stats sessions={} contigs={} reads_in={} mapped={} tasks={} records_out={} \
                 inflight_bases_peak={} out_buffered={} throttled={} timed_out={} \
                 backend_errors={} uptime_ms={} windows={} early_term={} rescued={} \
                 band_skipped={}",
                srv.service.active_sessions(),
                srv.service.ref_contigs(),
                m.reads_in,
                m.reads_mapped,
                m.tasks_generated,
                m.records_out,
                m.max_inflight_bases,
                m.session_output_buffered_bytes,
                m.sessions_throttled,
                m.sessions_timed_out,
                srv.service.backend_errors(),
                m.wall.as_millis(),
                eng.windows,
                eng.windows_early_terminated,
                eng.windows_rescued,
                eng.band_cells_skipped,
            )?;
        }
        StatsFormat::Json => {
            writeln!(writer, "# stats-json {}", srv.service.stats_json())?;
        }
        StatsFormat::Prom => {
            writeln!(writer, "# prom-begin")?;
            for line in srv.service.stats_prometheus().lines() {
                writeln!(writer, "# prom {line}")?;
            }
            writeln!(writer, "# prom-end")?;
        }
    }
    Ok(())
}

/// Serve a `STATS STREAM <ms>` push feed: one `# stat-frame {json}`
/// line immediately, then one per interval, until the client hangs up
/// (the write fails — possibly via the write timeout) or the server
/// starts draining (the feed then ends with `# ok stream-end`).
/// Interval rates are computed by diffing the service counters
/// between frames, so the first frame reports zero rates. The sleep
/// is chunked: a draining server reclaims this thread within ~50 ms
/// no matter how long the requested interval is.
fn stream_stats(
    writer: &mut BufWriter<Conn>,
    srv: &ServerShared,
    interval_ms: u64,
) -> io::Result<()> {
    use std::time::Instant;
    let interval = Duration::from_millis(interval_ms);
    let mut last = srv.service.metrics();
    let mut last_at = Instant::now();
    let mut rates = (0.0f64, 0.0f64);
    loop {
        writeln!(
            writer,
            "# stat-frame {}",
            srv.service.stat_frame_json(interval_ms, rates.0, rates.1)
        )?;
        writer.flush()?;
        let deadline = Instant::now() + interval;
        loop {
            if srv.service.is_draining() {
                writeln!(writer, "# ok stream-end")?;
                writer.flush()?;
                return Ok(());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            std::thread::sleep(left.min(Duration::from_millis(50)));
        }
        let now = Instant::now();
        let m = srv.service.metrics();
        let dt = now.duration_since(last_at).as_secs_f64().max(1e-9);
        rates = (
            m.reads_in.saturating_sub(last.reads_in) as f64 / dt,
            m.records_out.saturating_sub(last.records_out) as f64 / dt,
        );
        last = m;
        last_at = now;
    }
}

/// Drain session events to the client until `End` (which always closes
/// the response: any input error is written just before `# done`).
/// With a heartbeat interval, quiet stretches emit `# hb` — doubling
/// as a liveness probe of the client's read side: once writes time out
/// or fail, the returned error marks the writer dead and the reader
/// loop aborts the session.
fn drain_events(
    receiver: SessionReceiver,
    mut writer: BufWriter<Conn>,
    format: OutputFormat,
    input_err: &Mutex<Option<String>>,
    heartbeat: Option<Duration>,
) -> io::Result<BufWriter<Conn>> {
    loop {
        let event = match heartbeat {
            Some(hb) => match receiver.recv_deadline(hb) {
                RecvOutcome::Event(ev) => Some(ev),
                RecvOutcome::TimedOut => {
                    writeln!(writer, "{HB_LINE}")?;
                    writer.flush()?;
                    continue;
                }
                RecvOutcome::Closed => None,
            },
            None => receiver.recv(),
        };
        let Some(event) = event else {
            break; // service died before End; nothing more will come
        };
        match event {
            SessionEvent::Rows(rows) => {
                for row in &rows {
                    writeln!(writer, "{}", format.line(row))?;
                }
                writer.flush()?;
            }
            SessionEvent::ReadFailed { read } => {
                writeln!(writer, "{}", status_err_read(&read))?;
                writer.flush()?;
            }
            SessionEvent::Explain(json) => {
                // Provenance is opt-in (`SET explain on`); the JSON is
                // a single line by construction, safe to frame as a
                // status line.
                writeln!(writer, "# explain {json}")?;
                writer.flush()?;
            }
            SessionEvent::Overflow {
                buffered_bytes,
                cap,
            } => {
                writeln!(
                    writer,
                    "# err overflow: buffered output would reach {buffered_bytes} bytes \
                     (cap {cap}); session evicted, remaining rows dropped"
                )?;
                writer.flush()?;
            }
            SessionEvent::End(m) => {
                // End is sent only after the conn thread called
                // finish(), which happens after it stored any input
                // error — safe to read the slot here.
                if let Some(msg) = input_err.lock().unwrap().take() {
                    writeln!(writer, "# err input: {}", escape_name(&msg))?;
                }
                writeln!(
                    writer,
                    "# done reads={} mapped={} tasks={} records={} failed={}",
                    m.reads_in, m.reads_mapped, m.tasks, m.records_out, m.reads_failed
                )?;
                writer.flush()?;
                break;
            }
        }
    }
    Ok(writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genasm_pipeline::unescape_name;

    #[test]
    fn err_read_line_escapes_hostile_names() {
        let line = status_err_read("evil\nBEGIN\r# done\tx\\");
        // One line, no matter what the name contained.
        assert_eq!(line.lines().count(), 1);
        assert!(line.starts_with("# err read "));
        // Round-trip: the escaped payload decodes back to the name.
        let payload = line
            .strip_prefix("# err read ")
            .and_then(|s| s.strip_suffix(": no alignment within the edit budget"))
            .unwrap();
        assert_eq!(unescape_name(payload).unwrap(), "evil\nBEGIN\r# done\tx\\");
    }

    #[test]
    fn plain_names_pass_through_unchanged() {
        assert_eq!(
            status_err_read("read42"),
            "# err read read42: no alignment within the edit budget"
        );
    }
}
