//! Per-connection protocol handler.
//!
//! Each accepted connection runs on its own thread: a verb loop until
//! `BEGIN`, then the streaming phase — the connection thread parses
//! FASTA/FASTQ records off the socket and submits them to the shared
//! [`genasm_pipeline::PipelineService`], while a writer thread drains
//! the session's events back to the client. The two halves are
//! independent, so responses stream while the client is still
//! uploading, and on the *upload* side the pipeline's backpressure (a
//! full shared task queue blocks `submit`, which stops this thread
//! reading the socket) propagates to the client's TCP window. The
//! *response* side is deliberately not backpressured: the sink must
//! never block on one slow client (it would stall every session), so
//! a session's completed records buffer in its unbounded event channel
//! until the writer catches up — bounded by that session's total
//! output, not by `resident_bases_bound`, which covers task sequences
//! only. Per-session output caps are a ROADMAP follow-up.

use std::io::{self, BufRead, BufReader, BufWriter, Write};

use genasm_pipeline::{AdmissionError, OutputFormat, ReadInput, SessionEvent, SessionReceiver};
use readsim::FastxReader;

use crate::endpoint::Conn;
use crate::protocol::{parse_verb, StatsFormat, Verb};
use crate::ServerShared;

/// What the connection asked of the server beyond its own session.
pub(crate) enum ConnOutcome {
    /// Plain session (or verb-only connection).
    Done,
    /// The client sent `SHUTDOWN`: drain and exit.
    ShutdownRequested,
}

/// Serve one connection to completion.
pub(crate) fn handle_conn(conn: Conn, srv: &ServerShared) -> io::Result<ConnOutcome> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut backend = srv.default_backend;
    let mut format = srv.default_format;

    writeln!(
        writer,
        "# genasm-server v1 ref={} backend={backend} format={format}",
        srv.service.ref_name()
    )?;
    writer.flush()?;

    // Verb loop: one reply per line, until BEGIN or EOF.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(ConnOutcome::Done); // client left without a session
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        match parse_verb(trimmed) {
            Err(msg) => writeln!(writer, "# err {msg}")?,
            Ok(Verb::SetBackend(kind)) => {
                backend = kind;
                writeln!(writer, "# ok backend {backend}")?;
            }
            Ok(Verb::SetFormat(fmt)) => {
                format = fmt;
                writeln!(writer, "# ok format {format}")?;
            }
            Ok(Verb::Ping) => writeln!(writer, "# pong")?,
            Ok(Verb::Stats(fmt)) => write_stats(&mut writer, srv, fmt)?,
            Ok(Verb::Shutdown) => {
                writeln!(writer, "# ok draining")?;
                writer.flush()?;
                return Ok(ConnOutcome::ShutdownRequested);
            }
            Ok(Verb::Begin) => break,
        }
        writer.flush()?;
    }

    // Streaming phase: admission, then records in / rows out.
    let (mut session, receiver) = match srv.service.open_session(backend) {
        Ok(pair) => pair,
        Err(e @ AdmissionError::Draining) | Err(e @ AdmissionError::Busy { .. }) => {
            writeln!(writer, "# err {e}")?;
            writer.flush()?;
            return Ok(ConnOutcome::Done);
        }
    };
    writeln!(writer, "# ok begin backend={backend} format={format}")?;
    writer.flush()?;

    // The input-error slot: set by this thread *before* finish(), read
    // by the writer thread *at* the End event — so the error line is
    // emitted before `# done`, keeping the documented framing (the
    // response always ends with `# done`, then the connection closes).
    let input_err: std::sync::Arc<std::sync::Mutex<Option<String>>> =
        std::sync::Arc::new(std::sync::Mutex::new(None));
    let err_slot = std::sync::Arc::clone(&input_err);
    let writer_thread =
        std::thread::spawn(move || drain_events(receiver, writer, format, &err_slot));

    // Parse records off the socket until the client half-closes.
    for rec in FastxReader::new(&mut reader) {
        match rec {
            Ok(r) => {
                let read = ReadInput {
                    name: r.name,
                    seq: r.seq,
                };
                if session.submit(read).is_err() {
                    *input_err.lock().unwrap() = Some("pipeline service stopped".to_string());
                    break;
                }
            }
            Err(e) => {
                *input_err.lock().unwrap() = Some(e.to_string());
                break;
            }
        }
    }
    session.finish();

    let mut writer = writer_thread
        .join()
        .expect("session writer thread panicked")?;
    writer.flush()?;
    Ok(ConnOutcome::Done)
}

/// Answer one `STATS` verb in the requested exposition format.
///
/// The classic line format includes the engine's band counters
/// (`windows=`, `early_term=`, `rescued=`, `band_skipped=`) so an
/// operator can see early-termination effectiveness without opening a
/// JSON snapshot; they read zero until the first batch completes (the
/// engine merges stats batch-atomically).
fn write_stats(
    writer: &mut BufWriter<Conn>,
    srv: &ServerShared,
    fmt: StatsFormat,
) -> io::Result<()> {
    match fmt {
        StatsFormat::Line => {
            let m = srv.service.metrics();
            let eng = m.engine.unwrap_or_default();
            writeln!(
                writer,
                "# stats sessions={} contigs={} reads_in={} mapped={} tasks={} records_out={} \
                 inflight_bases_peak={} backend_errors={} uptime_ms={} windows={} early_term={} \
                 rescued={} band_skipped={}",
                srv.service.active_sessions(),
                srv.service.ref_contigs(),
                m.reads_in,
                m.reads_mapped,
                m.tasks_generated,
                m.records_out,
                m.max_inflight_bases,
                srv.service.backend_errors(),
                m.wall.as_millis(),
                eng.windows,
                eng.windows_early_terminated,
                eng.windows_rescued,
                eng.band_cells_skipped,
            )?;
        }
        StatsFormat::Json => {
            writeln!(writer, "# stats-json {}", srv.service.stats_json())?;
        }
        StatsFormat::Prom => {
            writeln!(writer, "# prom-begin")?;
            for line in srv.service.stats_prometheus().lines() {
                writeln!(writer, "# prom {line}")?;
            }
            writeln!(writer, "# prom-end")?;
        }
    }
    Ok(())
}

/// Drain session events to the client until `End` (which always closes
/// the response: any input error is written just before `# done`).
fn drain_events(
    receiver: SessionReceiver,
    mut writer: BufWriter<Conn>,
    format: OutputFormat,
    input_err: &std::sync::Mutex<Option<String>>,
) -> io::Result<BufWriter<Conn>> {
    while let Some(event) = receiver.recv() {
        match event {
            SessionEvent::Rows(rows) => {
                for row in &rows {
                    writeln!(writer, "{}", format.line(row))?;
                }
                writer.flush()?;
            }
            SessionEvent::ReadFailed { read } => {
                writeln!(
                    writer,
                    "# err read {read}: no alignment within the edit budget"
                )?;
                writer.flush()?;
            }
            SessionEvent::End(m) => {
                // End is sent only after the conn thread called
                // finish(), which happens after it stored any input
                // error — safe to read the slot here.
                if let Some(msg) = input_err.lock().unwrap().take() {
                    writeln!(writer, "# err input: {msg}")?;
                }
                writeln!(
                    writer,
                    "# done reads={} mapped={} tasks={} records={} failed={}",
                    m.reads_in, m.reads_mapped, m.tasks, m.records_out, m.reads_failed
                )?;
                writer.flush()?;
                break;
            }
        }
    }
    Ok(writer)
}
