//! Anchor chaining (minimap2's chaining DP, simplified).
//!
//! Matching read minimizers against the reference index yields
//! *anchors* `(read pos, ref pos, strand)`. Chaining finds collinear
//! runs of anchors with minimap2's gap-cost model; with `-P` semantics
//! we keep *every* chain above the score floor, not just the primary —
//! that is what produced the paper's 138,929 candidate locations from
//! 500 reads.

use align_core::Seq;

use crate::index::{minimizers, MinimizerIndex};

/// One seed match between read and reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// k-mer start on the read (forward read coordinates).
    pub read_pos: u32,
    /// k-mer start on the reference.
    pub ref_pos: u32,
    /// True when the read k-mer matches the reference in reverse
    /// orientation.
    pub reverse: bool,
}

/// A chain of collinear anchors = one candidate mapping location.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Chain score (minimap2-style).
    pub score: f64,
    /// Number of anchors in the chain.
    pub anchors: usize,
    /// Read interval covered (`[start, end)`, forward read coords).
    pub read_start: usize,
    /// End of the covered read interval.
    pub read_end: usize,
    /// Reference interval covered.
    pub ref_start: usize,
    /// End of the covered reference interval.
    pub ref_end: usize,
    /// Mapping strand.
    pub reverse: bool,
}

/// Chaining parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChainParams {
    /// Max predecessors examined per anchor (minimap2 `-z`-ish horizon).
    pub lookback: usize,
    /// Maximum gap between chained anchors on either sequence.
    pub max_gap: usize,
    /// Minimum chain score to report.
    pub min_score: f64,
    /// Minimum anchors per chain.
    pub min_anchors: usize,
}

impl Default for ChainParams {
    fn default() -> ChainParams {
        ChainParams {
            lookback: 50,
            max_gap: 5_000,
            min_score: 40.0,
            min_anchors: 3,
        }
    }
}

/// Collect anchors of `read` against the index.
pub fn collect_anchors(read: &Seq, index: &MinimizerIndex) -> Vec<Anchor> {
    let mut anchors = Vec::new();
    for m in minimizers(read, index.w, index.k) {
        for &(rpos, rflip) in index.lookup(m.hash) {
            anchors.push(Anchor {
                read_pos: m.pos,
                ref_pos: rpos,
                // Opposite canonical orientations = reverse-strand match.
                reverse: m.flipped != rflip,
            });
        }
    }
    anchors
}

/// An anchor prepared for the chaining DP: `sort_pos` is the read
/// coordinate used for collinearity (flipped for reverse strand),
/// `orig_pos` the original read coordinate for reporting.
#[derive(Debug, Clone, Copy)]
struct DpAnchor {
    sort_pos: u32,
    orig_pos: u32,
    ref_pos: u32,
}

/// Chain anchors with the minimap2 gap cost; returns all chains with
/// `-P` semantics (every chain above the floor, best first).
pub fn chain_anchors(anchors: &[Anchor], k: usize, params: &ChainParams) -> Vec<Chain> {
    let mut chains = Vec::new();
    for strand in [false, true] {
        let strand_anchors: Vec<Anchor> = anchors
            .iter()
            .copied()
            .filter(|a| a.reverse == strand)
            .collect();
        if strand_anchors.is_empty() {
            continue;
        }
        // For reverse-strand chains, collinearity means read position
        // decreasing as ref position increases; flip read coords so the
        // same DP applies.
        let max_rp = strand_anchors.iter().map(|a| a.read_pos).max().unwrap();
        let mut subset: Vec<DpAnchor> = strand_anchors
            .iter()
            .map(|a| DpAnchor {
                sort_pos: if strand {
                    max_rp - a.read_pos
                } else {
                    a.read_pos
                },
                orig_pos: a.read_pos,
                ref_pos: a.ref_pos,
            })
            .collect();
        subset.sort_unstable_by_key(|a| (a.ref_pos, a.sort_pos));
        chains.extend(chain_one_strand(&subset, k, params, strand));
    }
    chains.sort_by(|a, b| b.score.total_cmp(&a.score));
    chains
}

fn chain_one_strand(
    anchors: &[DpAnchor],
    k: usize,
    params: &ChainParams,
    strand: bool,
) -> Vec<Chain> {
    let n = anchors.len();
    let mut score = vec![0f64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        score[i] = k as f64;
        let lo = i.saturating_sub(params.lookback);
        for j in (lo..i).rev() {
            let dr = anchors[i].ref_pos as i64 - anchors[j].ref_pos as i64;
            let dq = anchors[i].sort_pos as i64 - anchors[j].sort_pos as i64;
            if dr <= 0 || dq <= 0 {
                continue; // not collinear
            }
            if dr as usize > params.max_gap || dq as usize > params.max_gap {
                continue;
            }
            let dd = (dr - dq).unsigned_abs() as f64;
            let gain = (dq.min(dr) as f64).min(k as f64);
            let cost = 0.01 * k as f64 * dd + 0.5 * (dd.max(1.0)).log2();
            let s = score[j] + gain - cost;
            if s > score[i] {
                score[i] = s;
                pred[i] = Some(j);
            }
        }
    }
    // Peel chains best-first; each anchor belongs to at most one chain,
    // but every chain above the floor is reported (the -P behaviour).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| score[b].total_cmp(&score[a]));
    let mut used = vec![false; n];
    let mut out = Vec::new();
    for &end in &order {
        if used[end] || score[end] < params.min_score {
            continue;
        }
        let mut members = Vec::new();
        let mut cur = Some(end);
        while let Some(i) = cur {
            if used[i] {
                break; // ran into an anchor claimed by a better chain
            }
            members.push(i);
            used[i] = true;
            cur = pred[i];
        }
        if members.len() < params.min_anchors {
            continue;
        }
        // Report original (unflipped) read coordinates.
        let (mut q_lo, mut q_hi) = (u32::MAX, 0u32);
        let (mut t_lo, mut t_hi) = (u32::MAX, 0u32);
        for &i in &members {
            let a = &anchors[i];
            t_lo = t_lo.min(a.ref_pos);
            t_hi = t_hi.max(a.ref_pos);
            q_lo = q_lo.min(a.orig_pos);
            q_hi = q_hi.max(a.orig_pos);
        }
        out.push(Chain {
            score: score[end],
            anchors: members.len(),
            read_start: q_lo as usize,
            read_end: q_hi as usize + k,
            ref_start: t_lo as usize,
            ref_end: t_hi as usize + k,
            reverse: strand,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(read_pos: u32, ref_pos: u32) -> Anchor {
        Anchor {
            read_pos,
            ref_pos,
            reverse: false,
        }
    }

    #[test]
    fn collinear_anchors_form_one_chain() {
        let anchors: Vec<Anchor> = (0..20).map(|i| mk(i * 20, 1000 + i * 20)).collect();
        let chains = chain_anchors(&anchors, 15, &ChainParams::default());
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.anchors, 20);
        assert_eq!(c.read_start, 0);
        assert_eq!(c.ref_start, 1000);
        assert!(!c.reverse);
    }

    #[test]
    fn two_loci_form_two_chains() {
        let mut anchors: Vec<Anchor> = (0..10).map(|i| mk(i * 30, 500 + i * 30)).collect();
        anchors.extend((0..10).map(|i| mk(i * 30, 90_000 + i * 30)));
        let chains = chain_anchors(&anchors, 15, &ChainParams::default());
        assert_eq!(chains.len(), 2, "distant loci cannot be chained together");
    }

    #[test]
    fn indel_tolerant_chaining() {
        // 100-base deletion in the middle: still one chain.
        let mut anchors: Vec<Anchor> = (0..10).map(|i| mk(i * 25, 2000 + i * 25)).collect();
        anchors.extend((0..10).map(|i| mk(250 + i * 25, 2000 + 350 + i * 25)));
        let chains = chain_anchors(&anchors, 15, &ChainParams::default());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].anchors, 20);
    }

    #[test]
    fn score_floor_filters_noise() {
        let anchors = vec![mk(0, 100), mk(5000, 90_000)];
        let chains = chain_anchors(&anchors, 15, &ChainParams::default());
        assert!(chains.is_empty(), "two stray anchors are not a chain");
    }

    #[test]
    fn reverse_strand_chain_recovered() {
        // Reverse-strand: read positions descend as ref ascends.
        let anchors: Vec<Anchor> = (0..12)
            .map(|i| Anchor {
                read_pos: (11 - i) * 40,
                ref_pos: 7000 + i * 40,
                reverse: true,
            })
            .collect();
        let chains = chain_anchors(&anchors, 15, &ChainParams::default());
        assert_eq!(chains.len(), 1);
        assert!(chains[0].reverse);
        assert_eq!(chains[0].ref_start, 7000);
        assert_eq!(chains[0].read_start, 0);
    }

    #[test]
    fn chains_sorted_by_score() {
        let mut anchors: Vec<Anchor> = (0..20).map(|i| mk(i * 20, 1000 + i * 20)).collect();
        anchors.extend((0..5).map(|i| mk(i * 20, 50_000 + i * 20)));
        let chains = chain_anchors(&anchors, 15, &ChainParams::default());
        assert_eq!(chains.len(), 2);
        assert!(chains[0].score >= chains[1].score);
        assert_eq!(chains[0].anchors, 20);
    }
}
