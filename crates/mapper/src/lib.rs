//! # mapper
//!
//! A minimap2-lite read mapper used as the paper's candidate-location
//! generator: minimizer seeding ([`index`]), gap-cost chaining
//! ([`chain`]) and candidate window extraction ([`candidates`]).
//!
//! The paper runs `minimap2 -P` to obtain **all** chains (138,929
//! candidate locations for 500 reads) and aligns every one of them.
//! This crate reproduces that pipeline shape: canonical `(w, k)`
//! minimizers, a chaining DP with minimap2's gap cost, no primary-chain
//! filtering, and flanked reference windows ready for global alignment.
//!
//! For genome-scale, multi-contig references, [`shard`] splits the
//! reference into overlapping slices — never straddling a contig
//! boundary — with one `MinimizerIndex` *and the only copy of the
//! slice's bases* each, and fans anchor collection out across a
//! persistent pool of per-shard workers; the merged candidate stream
//! is guaranteed identical for every shard count.

pub mod candidates;
pub mod chain;
pub mod index;
pub mod shard;

pub use candidates::{
    candidates_for_read, chain_window, edit_bound_hint, generate_batch, task_from_chain,
    CandidateParams,
};
pub use chain::{chain_anchors, collect_anchors, Anchor, Chain, ChainParams};
pub use index::{hash64, minimizers, minimizers_windowed, Minimizer, MinimizerIndex};
pub use shard::{ReadMapStats, ShardIndexMetrics, ShardMetrics, ShardedIndex};
