//! Contig-aware sharded reference index with shard-local sequence
//! storage and a persistent per-shard worker pool.
//!
//! A single [`MinimizerIndex`] is the last monolithic stage in the
//! streaming pipeline: it is built in one pass over one sequence and
//! queried from one thread. [`ShardedIndex`] splits a multi-contig
//! [`Reference`] into overlapping slices — **never straddling a contig
//! boundary** — builds one `MinimizerIndex` per slice, fans anchor
//! collection out across a persistent pool of per-shard workers, and
//! merges the per-shard hits deterministically (global coordinate
//! translation, stable sort, overlap dedup) before the chaining DP
//! runs per contig over the merged set.
//!
//! **Shard-local residency.** Each shard owns the only copy of its
//! slice of the reference (`tile + overlap` bases). The build consumes
//! the [`Reference`] and drops every contig sequence after slicing it,
//! so no monolithic reference `Seq` survives the build — candidate
//! windows are stitched from shard-local storage
//! ([`ShardedIndex::window`]), and total resident reference bytes are
//! `Σ (tile + overlap)` ([`ShardedIndex::resident_reference_bytes`]).
//!
//! The load-bearing guarantee is **shard-count invariance**: for any
//! shard count and any overlap of at least one winnowing window
//! ([`ShardedIndex::min_overlap`] bases, enforced by the constructor),
//! the merged anchor stream — and therefore every chain, candidate
//! task, and output byte downstream — is *identical* for every shard
//! count (and, on a single contig, identical to the unsharded
//! [`MinimizerIndex`] path). Three properties make that hold:
//!
//! 1. **Slice minimizers are contig minimizers.** Every full winnowing
//!    window of a slice is a window of its contig and selects the same
//!    k-mer, so slices are extracted with [`minimizers_windowed`] (no
//!    short-sequence fallback, which would invent minimizers from
//!    truncated windows). With overlap ≥ one window span, every contig
//!    window fits inside the shard owning its start, so the union over
//!    shards is the exact per-contig set. A shard that covers its
//!    *whole* contig keeps the fallback so short contigs stay
//!    indexable — and such a contig is never split, so the rule is
//!    shard-count invariant.
//! 2. **The occurrence cutoff is global.** `max_occ` masking must see
//!    genome-wide occurrence counts across every contig, not per-shard
//!    counts (a repeat spread over shards or contigs could slip under
//!    a local cutoff). The build counts each distinct reference
//!    position once — overlap duplicates are detected against earlier
//!    shards — and lookups consult the global count.
//! 3. **The merge is canonical.** Per-shard anchors are translated to
//!    global coordinates, concatenated in shard order, sorted by
//!    `(read_pos, ref_pos, strand)` and deduplicated, which reproduces
//!    the unsharded anchor order exactly (read minimizers ascend in
//!    position; bucket hits ascend in reference position). Chaining
//!    then runs per contig (a chain can never span two contigs) and
//!    chains merge by score with contig order as the stable tiebreak.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use align_core::{AlignTask, Reference, Seq};

use crate::candidates::{chain_window, edit_bound_hint, CandidateParams};
use crate::chain::{chain_anchors, Anchor, Chain, ChainParams};
use crate::index::{minimizers, minimizers_windowed, MinimizerIndex};

/// One reference shard: a slice of a single contig with its own
/// minimizer index and the only copy of the slice's bases.
///
/// The shard *owns* the contig-local tile `[tile_start, tile_end)` and
/// *stores* `[tile_start, tile_start + slice.len())` — the tile plus
/// up to `overlap` trailing bases (clamped to the contig end).
#[derive(Debug)]
struct Shard {
    /// Index of the contig this shard slices.
    contig: u32,
    /// Global start of the stored slice.
    start: usize,
    /// Global end of the stored slice (exclusive; includes overlap).
    end: usize,
    /// Contig-local start of the ownership tile (== slice start).
    tile_start: usize,
    /// Contig-local end of the ownership tile (exclusive, no overlap).
    tile_end: usize,
    /// The shard-local reference bases (tile + overlap).
    slice: Seq,
    /// Minimizer index over the slice (positions local to the slice).
    index: MinimizerIndex,
    /// Busy time spent collecting anchors in this shard, nanoseconds.
    busy_ns: AtomicU64,
    /// Anchors this shard contributed (before overlap dedup).
    anchors_found: AtomicU64,
}

impl Shard {
    /// Does this shard's bucket for `hash` contain global position
    /// `gpos`? (Bucket positions are ascending, so binary search.)
    fn contains(&self, hash: u64, gpos: u32) -> bool {
        let Some(local) = (gpos as usize).checked_sub(self.start) else {
            return false;
        };
        self.index
            .occurrences(hash)
            .binary_search_by_key(&(local as u32), |&(p, _)| p)
            .is_ok()
    }
}

/// One shard's share of the fan-out: scan the read's (already
/// mask-filtered) minimizers against the shard index, translating hits
/// to global coordinates.
fn shard_anchors(shard: &Shard, read_mins: &[crate::Minimizer]) -> Vec<Anchor> {
    let t0 = Instant::now();
    let mut out = Vec::new();
    for m in read_mins {
        for &(pos, rflip) in shard.index.occurrences(m.hash) {
            out.push(Anchor {
                read_pos: m.pos,
                ref_pos: (shard.start + pos as usize) as u32,
                reverse: m.flipped != rflip,
            });
        }
    }
    shard
        .anchors_found
        .fetch_add(out.len() as u64, Ordering::Relaxed);
    shard
        .busy_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// One anchor-collection request handed to a shard worker.
struct Job {
    /// The read's mask-filtered minimizers, shared across all shards.
    mins: Arc<Vec<crate::Minimizer>>,
    /// Where the worker sends `(shard index, anchors)`.
    reply: mpsc::Sender<(usize, Vec<Anchor>)>,
}

/// A minimal MPSC job queue (`Mutex` + `Condvar`) feeding one shard
/// worker. `std::sync::mpsc::Sender` is not `Sync` on all supported
/// toolchains, and the index must be shareable across session threads,
/// so the submit side is a plain `&self` method here.
struct JobChan {
    state: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl JobChan {
    fn new() -> JobChan {
        JobChan {
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn send(&self, job: Job) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(!st.1, "send after close");
        st.0.push_back(job);
        drop(st);
        self.cv.notify_one();
    }

    fn recv(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.0.pop_front() {
                return Some(job);
            }
            if st.1 {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// The persistent per-shard worker pool: one thread per shard, alive
/// for the index's lifetime, fed by a per-shard [`JobChan`]. Replaces
/// the per-read `thread::scope` spawn of the original fan-out — short
/// reads no longer pay a thread spawn/join per shard per read.
struct Pool {
    chans: Vec<Arc<JobChan>>,
    handles: Vec<JoinHandle<()>>,
}

impl core::fmt::Debug for Pool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Pool({} workers)", self.handles.len())
    }
}

/// One contig's identity inside the index: the sequence itself lives
/// only in the shard slices.
#[derive(Debug, Clone)]
struct ContigMeta {
    name: Arc<str>,
    offset: usize,
    len: usize,
}

/// Telemetry for one shard of a [`ShardedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Index of the contig this shard slices.
    pub contig: u32,
    /// Global span of the shard's slice.
    pub start: usize,
    /// End of the span (exclusive).
    pub end: usize,
    /// Time spent collecting anchors in this shard.
    pub busy: Duration,
    /// Anchors contributed before the overlap dedup.
    pub anchors: u64,
}

/// Telemetry snapshot of a [`ShardedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndexMetrics {
    /// Per-shard spans, busy time, and anchor counts.
    pub shards: Vec<ShardMetrics>,
    /// Number of reference contigs.
    pub contigs: usize,
    /// Duplicate anchors removed by the overlap merge.
    pub dup_anchors_merged: u64,
    /// Effective overlap in bases (after the exactness clamp).
    pub overlap: usize,
    /// Resident shard-local reference storage, in packed bytes
    /// (the monolithic reference is dropped at build).
    pub reference_bytes: usize,
}

/// Per-read funnel counts from one pass through the candidate stages
/// (anchors → chains → candidate tasks), reported by
/// [`ShardedIndex::candidates_for_read_stats`]. Each count is the size
/// of the corresponding intermediate, so `anchors == 0` implies
/// `chains == 0` implies `candidates == 0` — the read's first empty
/// stage is the reason it went unmapped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadMapStats {
    /// Merged, deduplicated anchors across all shards.
    pub anchors: u64,
    /// Chains produced by the per-contig chaining DP.
    pub chains: u64,
    /// Candidate tasks emitted (after the per-read cap).
    pub candidates: u64,
}

impl ReadMapStats {
    /// The funnel stage that emptied first, as the unmapped-reason
    /// suffix the provenance layer reports (`None` when the read
    /// produced at least one candidate).
    pub fn unmapped_reason(&self) -> Option<&'static str> {
        if self.candidates > 0 {
            None
        } else if self.anchors == 0 {
            Some("no_anchors")
        } else if self.chains == 0 {
            Some("no_chain")
        } else {
            Some("no_candidates")
        }
    }
}

/// A minimizer index split into overlapping, contig-aware reference
/// shards that own their slice of the reference.
#[derive(Debug)]
pub struct ShardedIndex {
    /// Window length in k-mers.
    pub w: usize,
    /// k-mer length.
    pub k: usize,
    /// Global occurrence cutoff (see [`MinimizerIndex::max_occ`]).
    pub max_occ: usize,
    /// Effective overlap between consecutive shards, in bases.
    pub overlap: usize,
    contigs: Vec<ContigMeta>,
    /// `contig_shards[c]` is the range of shard indices slicing contig
    /// `c` (shards are laid out contig by contig, in order).
    contig_shards: Vec<std::ops::Range<usize>>,
    shards: Arc<Vec<Shard>>,
    /// Genome-wide occurrence count per hash (overlap-deduplicated,
    /// across every contig).
    counts: HashMap<u64, u32>,
    /// Duplicate anchors removed by the merge, across all queries.
    dup_anchors: AtomicU64,
    pool: Option<Pool>,
}

impl ShardedIndex {
    /// Build with minimap2-ish long-read defaults (`w = 10`, `k = 15`,
    /// `max_occ = 400`), matching [`MinimizerIndex::build`].
    pub fn build(reference: Reference, shards: usize, overlap: usize) -> ShardedIndex {
        ShardedIndex::build_params(reference, shards, overlap, 10, 15, 400)
    }

    /// Build with explicit parameters, consuming the reference:
    /// each contig sequence is dropped once its shards have copied
    /// their slices, so the only resident reference bytes after the
    /// build are shard-local.
    ///
    /// `shards` is a *target*: the slice stride is `⌈total/shards⌉`
    /// and every contig is tiled independently at that stride, so
    /// boundaries never straddle contigs and every non-empty contig
    /// gets at least one shard (a multi-contig reference can therefore
    /// have a few more shards than requested). `shards` is clamped to
    /// at least 1 and `overlap` to at least `w + k` bases (one
    /// winnowing window plus slack — below that, windows spanning a
    /// shard boundary would fit in no shard and anchors would be
    /// lost).
    pub fn build_params(
        reference: Reference,
        shards: usize,
        overlap: usize,
        w: usize,
        k: usize,
        max_occ: usize,
    ) -> ShardedIndex {
        let total = reference.total_len();
        let shards = shards.max(1);
        let overlap = overlap.max(w + k);
        let slice_len = total.div_ceil(shards).max(1);

        let mut built: Vec<Shard> = Vec::new();
        let mut contigs: Vec<ContigMeta> = Vec::new();
        let mut contig_shards: Vec<std::ops::Range<usize>> = Vec::new();
        let mut offset = 0usize;
        for (ci, contig) in reference.into_contigs().into_iter().enumerate() {
            let len = contig.seq.len();
            let first = built.len();
            let mut tile_start = 0usize;
            while tile_start < len {
                let tile_end = (tile_start + slice_len).min(len);
                let slice_end = (tile_start + slice_len + overlap).min(len);
                let slice = contig.seq.slice(tile_start, slice_end - tile_start);
                // A shard covering its whole contig keeps the
                // short-sequence winnowing fallback so short contigs
                // (and `shards = 1` single-contig references) index
                // bit-identically to the unsharded path; every other
                // shard emits full-window minimizers only (see module
                // docs). A contig short enough to need the fallback is
                // never split, so this is shard-count invariant.
                let ms = if tile_start == 0 && slice_end == len {
                    minimizers(&slice, w, k)
                } else {
                    minimizers_windowed(&slice, w, k)
                };
                built.push(Shard {
                    contig: ci as u32,
                    start: offset + tile_start,
                    end: offset + slice_end,
                    tile_start,
                    tile_end,
                    index: MinimizerIndex::from_minimizers(ms, w, k, slice.len(), max_occ),
                    slice,
                    busy_ns: AtomicU64::new(0),
                    anchors_found: AtomicU64::new(0),
                });
                tile_start += slice_len;
            }
            contig_shards.push(first..built.len());
            contigs.push(ContigMeta {
                name: contig.name,
                offset,
                len,
            });
            offset += len;
            // `contig.seq` drops here: from this point on the only
            // copy of these bases is the shard slices above.
        }

        // Global occurrence counts: each distinct reference position
        // counts once. A position inside an overlap appears in more
        // than one shard; it is counted by the first shard that holds
        // it and skipped when a later shard sees it again. (Shards of
        // different contigs never overlap, so the backward walk stops
        // at the contig boundary by construction.)
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for si in 0..built.len() {
            for (hash, hits) in built[si].index.buckets() {
                for &(pos, _) in hits {
                    let gpos = (built[si].start + pos as usize) as u32;
                    let dup = (0..si)
                        .rev()
                        .take_while(|&j| built[j].end > gpos as usize)
                        .any(|j| built[j].contains(hash, gpos));
                    if !dup {
                        *counts.entry(hash).or_insert(0) += 1;
                    }
                }
            }
        }

        let shards_arc = Arc::new(built);
        // Persistent per-shard workers: worth a thread only when there
        // is an actual fan-out.
        let pool = if shards_arc.len() > 1 {
            let mut chans = Vec::with_capacity(shards_arc.len());
            let mut handles = Vec::with_capacity(shards_arc.len());
            for idx in 0..shards_arc.len() {
                let chan = Arc::new(JobChan::new());
                let worker_chan = Arc::clone(&chan);
                let worker_shards = Arc::clone(&shards_arc);
                handles.push(std::thread::spawn(move || {
                    while let Some(job) = worker_chan.recv() {
                        let anchors = shard_anchors(&worker_shards[idx], &job.mins);
                        // A dropped receiver just means the query was
                        // abandoned; the worker keeps serving.
                        let _ = job.reply.send((idx, anchors));
                    }
                }));
                chans.push(chan);
            }
            Some(Pool { chans, handles })
        } else {
            None
        };

        ShardedIndex {
            w,
            k,
            max_occ,
            overlap,
            contigs,
            contig_shards,
            shards: shards_arc,
            counts,
            dup_anchors: AtomicU64::new(0),
            pool,
        }
    }

    /// Number of reference shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global `[start, end)` span of each shard's stored slice.
    pub fn shard_spans(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| (s.start, s.end)).collect()
    }

    /// Number of reference contigs.
    pub fn num_contigs(&self) -> usize {
        self.contigs.len()
    }

    /// Name of contig `c`.
    pub fn contig_name(&self, c: u32) -> &str {
        &self.contigs[c as usize].name
    }

    /// Shared handle to contig `c`'s name (cheap to clone into
    /// per-task metadata).
    pub fn contig_name_shared(&self, c: u32) -> Arc<str> {
        Arc::clone(&self.contigs[c as usize].name)
    }

    /// Length of contig `c` in bases.
    pub fn contig_len(&self, c: u32) -> usize {
        self.contigs[c as usize].len
    }

    /// Global start of contig `c`.
    pub fn contig_offset(&self, c: u32) -> usize {
        self.contigs[c as usize].offset
    }

    /// Total reference length across all contigs.
    pub fn total_len(&self) -> usize {
        self.contigs.last().map_or(0, |c| c.offset + c.len)
    }

    /// Map a global position to `(contig, contig-local position)`.
    /// Empty contigs own no positions.
    ///
    /// # Panics
    /// Panics if `gpos >= total_len()`.
    pub fn locate(&self, gpos: usize) -> (u32, usize) {
        assert!(
            gpos < self.total_len(),
            "global position {gpos} out of range (total {})",
            self.total_len()
        );
        let i = self.contigs.partition_point(|c| c.offset + c.len <= gpos);
        (i as u32, gpos - self.contigs[i].offset)
    }

    /// Packed bytes of shard-local reference storage currently
    /// resident — the *only* reference bases the index holds (the
    /// monolithic `Seq`s were consumed by the build).
    pub fn resident_reference_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.slice.packed_bytes()).sum()
    }

    /// Copy the window `[start, end)` of contig `c` out of shard-local
    /// storage. The ownership tiles of a contig's shards partition it,
    /// so any window — including one spanning several shards — is
    /// stitched exactly; bytes are identical to slicing the original
    /// contig.
    ///
    /// # Panics
    /// Panics if `end` exceeds the contig length.
    pub fn window(&self, c: u32, start: usize, end: usize) -> Seq {
        assert!(
            end <= self.contigs[c as usize].len,
            "window end {end} exceeds contig length {}",
            self.contigs[c as usize].len
        );
        let mut out = Seq::with_capacity(end.saturating_sub(start));
        for si in self.contig_shards[c as usize].clone() {
            let sh = &self.shards[si];
            if sh.tile_end <= start {
                continue;
            }
            if sh.tile_start >= end {
                break;
            }
            let lo = start.max(sh.tile_start);
            let hi = end.min(sh.tile_end);
            // Packed-word append: copies whole 2-bit-packed bytes with
            // boundary masking instead of one base at a time.
            out.extend_from(&sh.slice, lo - sh.tile_start, hi - lo);
        }
        out
    }

    /// Number of distinct indexed minimizer hashes, genome-wide
    /// (on a single contig this equals
    /// [`MinimizerIndex::distinct_minimizers`] of the unsharded index
    /// over the same sequence).
    pub fn distinct_minimizers(&self) -> usize {
        self.counts.len()
    }

    /// Is this hash masked by the **global** occurrence cutoff?
    pub fn is_masked(&self, hash: u64) -> bool {
        self.counts
            .get(&hash)
            .is_some_and(|&c| c as usize > self.max_occ)
    }

    /// Collect the anchors of `read` against every shard and merge
    /// them into the canonical global anchor stream (on a single
    /// contig, identical to [`crate::collect_anchors`] against the
    /// unsharded index).
    ///
    /// With more than one shard the query fans out to the persistent
    /// per-shard workers; the merge is deterministic regardless.
    pub fn collect_anchors(&self, read: &Seq) -> Vec<Anchor> {
        // Apply the global occurrence mask once, up front, so the S
        // shard workers don't repeat the count lookups per minimizer.
        let mut read_mins = minimizers(read, self.w, self.k);
        read_mins.retain(|m| !self.is_masked(m.hash));
        let per_shard: Vec<Vec<Anchor>> = match &self.pool {
            None => self
                .shards
                .iter()
                .map(|s| shard_anchors(s, &read_mins))
                .collect(),
            Some(pool) => {
                let mins = Arc::new(read_mins);
                let (reply, replies) = mpsc::channel();
                for chan in &pool.chans {
                    chan.send(Job {
                        mins: Arc::clone(&mins),
                        reply: reply.clone(),
                    });
                }
                drop(reply);
                let mut slots: Vec<Option<Vec<Anchor>>> =
                    (0..self.shards.len()).map(|_| None).collect();
                for _ in 0..self.shards.len() {
                    let (idx, anchors) = replies.recv().expect("shard worker exited early");
                    slots[idx] = Some(anchors);
                }
                // Flatten in shard order: the reply arrival order is
                // nondeterministic, the merge is not.
                slots
                    .into_iter()
                    .map(|s| s.expect("every shard replies exactly once"))
                    .collect()
            }
        };
        let mut anchors: Vec<Anchor> = per_shard.into_iter().flatten().collect();
        anchors.sort_unstable_by_key(|a| (a.read_pos, a.ref_pos, a.reverse));
        let before = anchors.len();
        anchors.dedup();
        self.dup_anchors
            .fetch_add((before - anchors.len()) as u64, Ordering::Relaxed);
        anchors
    }

    /// Chain `read`'s merged anchors, per contig, and return every
    /// chain as `(contig, chain)` with **contig-local** coordinates,
    /// best score first (contig order breaks score ties, stably).
    /// A chain never spans two contigs.
    pub fn chains_for_read(&self, read: &Seq, params: &ChainParams) -> Vec<(u32, Chain)> {
        let anchors = self.collect_anchors(read);
        self.chains_from_anchors(&anchors, params)
    }

    /// Chain an already-merged anchor stream (the body of
    /// [`ShardedIndex::chains_for_read`], split out so the provenance
    /// path can observe the anchor count without re-collecting).
    fn chains_from_anchors(&self, anchors: &[Anchor], params: &ChainParams) -> Vec<(u32, Chain)> {
        let mut merged: Vec<(u32, Chain)> = Vec::new();
        if self.contigs.len() <= 1 {
            // Single contig: local == global; skip the partition.
            merged.extend(
                chain_anchors(anchors, self.k, params)
                    .into_iter()
                    .map(|c| (0u32, c)),
            );
            return merged; // chain_anchors already sorts by score
        }
        let mut per_contig: Vec<Vec<Anchor>> = vec![Vec::new(); self.contigs.len()];
        for a in anchors {
            let (ci, local) = self.locate(a.ref_pos as usize);
            per_contig[ci as usize].push(Anchor {
                ref_pos: local as u32,
                ..*a
            });
        }
        for (ci, list) in per_contig.iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            merged.extend(
                chain_anchors(list, self.k, params)
                    .into_iter()
                    .map(|c| (ci as u32, c)),
            );
        }
        // Stable: equal scores keep contig order, so the merged chain
        // list is deterministic and shard-count invariant.
        merged.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));
        merged
    }

    /// Map one read through the sharded fan-out: merged anchors,
    /// per-contig chaining, candidate tasks in contig-local
    /// coordinates with targets stitched from shard-local storage.
    /// Output is shard-count invariant, and on a single contig
    /// identical to [`crate::candidates_for_read`] on the unsharded
    /// index.
    pub fn candidates_for_read(
        &self,
        read_id: u32,
        read: &Seq,
        params: &CandidateParams,
    ) -> Vec<AlignTask> {
        self.candidates_for_read_stats(read_id, read, params).0
    }

    /// [`ShardedIndex::candidates_for_read`] plus the per-read funnel
    /// counts the provenance layer records: how many merged anchors
    /// the read produced, how many chains survived the DP, and how
    /// many candidate tasks were emitted (after the per-read cap).
    /// The tasks are built by exactly the same code path, so they are
    /// identical to [`ShardedIndex::candidates_for_read`]'s — the
    /// counts are observations, never inputs.
    pub fn candidates_for_read_stats(
        &self,
        read_id: u32,
        read: &Seq,
        params: &CandidateParams,
    ) -> (Vec<AlignTask>, ReadMapStats) {
        let anchors = self.collect_anchors(read);
        let chains = self.chains_from_anchors(&anchors, &params.chain);
        let tasks: Vec<AlignTask> = chains
            .iter()
            .take(params.max_per_read)
            .map(|(ci, chain)| {
                let limit = self.contigs[*ci as usize].len;
                let (start, end) = chain_window(chain, read.len(), limit, params.flank);
                let target = self.window(*ci, start, end);
                let query = if chain.reverse {
                    read.reverse_complement()
                } else {
                    read.clone()
                };
                // Same estimator as the unsharded path: chain scores,
                // spans, and window lengths are shard-count invariant,
                // so the hint is too (the invariance tests compare
                // whole tasks, hint included).
                let hint = edit_bound_hint(chain, read.len(), target.len());
                AlignTask::new(read_id, start, query, target)
                    .oriented(chain.reverse)
                    .in_contig(*ci)
                    .with_edit_bound(hint)
            })
            .collect();
        let stats = ReadMapStats {
            anchors: anchors.len() as u64,
            chains: chains.len() as u64,
            candidates: tasks.len() as u64,
        };
        (tasks, stats)
    }

    /// Snapshot the per-shard telemetry accumulated so far.
    pub fn metrics(&self) -> ShardIndexMetrics {
        ShardIndexMetrics {
            shards: self
                .shards
                .iter()
                .map(|s| ShardMetrics {
                    contig: s.contig,
                    start: s.start,
                    end: s.end,
                    busy: Duration::from_nanos(s.busy_ns.load(Ordering::Relaxed)),
                    anchors: s.anchors_found.load(Ordering::Relaxed),
                })
                .collect(),
            contigs: self.contigs.len(),
            dup_anchors_merged: self.dup_anchors.load(Ordering::Relaxed),
            overlap: self.overlap,
            reference_bytes: self.resident_reference_bytes(),
        }
    }

    /// Smallest overlap in bases that preserves shard-count invariance
    /// for `(w, k)` winnowing parameters;
    /// [`ShardedIndex::build_params`] clamps to it.
    pub fn min_overlap(w: usize, k: usize) -> usize {
        w + k
    }
}

impl Drop for ShardedIndex {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            for chan in &pool.chans {
                chan.close();
            }
            for h in pool.handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_anchors;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    /// Wrap a sequence as the single-contig reference the legacy tests
    /// exercise.
    fn single(s: &Seq) -> Reference {
        Reference::single("ref", s.clone())
    }

    /// Pseudo-random but dependency-free test sequence.
    fn mixed_seq(len: usize, salt: u64) -> Seq {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                align_core::Base::from_code((state >> 33) as u8 & 3)
            })
            .collect()
    }

    #[test]
    fn shard_spans_tile_the_reference_with_overlap() {
        let s = mixed_seq(10_000, 7);
        let idx = ShardedIndex::build_params(single(&s), 4, 100, 10, 15, 400);
        let spans = idx.shard_spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans.last().unwrap().1, 10_000);
        for pair in spans.windows(2) {
            // Next shard starts before the previous ends (overlap) and
            // slices advance by a fixed stride.
            assert!(pair[1].0 < pair[0].1);
            assert_eq!(pair[1].0 - pair[0].0, 2_500);
        }
    }

    #[test]
    fn overlap_is_clamped_to_exactness_floor() {
        let s = mixed_seq(5_000, 9);
        let idx = ShardedIndex::build_params(single(&s), 3, 0, 10, 15, 400);
        assert_eq!(idx.overlap, ShardedIndex::min_overlap(10, 15));
    }

    #[test]
    fn distinct_minimizers_match_unsharded_index() {
        let s = mixed_seq(30_000, 3);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        for shards in [1, 2, 3, 5, 8] {
            let idx = ShardedIndex::build_params(single(&s), shards, 64, 10, 15, 400);
            assert_eq!(
                idx.distinct_minimizers(),
                flat.distinct_minimizers(),
                "distinct hash count diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn anchors_equal_unsharded_for_every_shard_count() {
        let s = mixed_seq(20_000, 11);
        let read = s.slice(4_321, 1_200);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        let expected = collect_anchors(&read, &flat);
        assert!(!expected.is_empty(), "exact read must anchor");
        for shards in 1..=8 {
            let idx = ShardedIndex::build_params(single(&s), shards, 32, 10, 15, 400);
            assert_eq!(
                idx.collect_anchors(&read),
                expected,
                "anchor stream diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn overlap_duplicates_are_merged_and_counted() {
        let s = mixed_seq(20_000, 13);
        // A read straddling the shard boundary at 10_000 hits both
        // shards' overlap copies of the same positions.
        let read = s.slice(9_000, 2_000);
        let idx = ShardedIndex::build_params(single(&s), 2, 2_000, 10, 15, 400);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        assert_eq!(idx.collect_anchors(&read), collect_anchors(&read, &flat));
        let m = idx.metrics();
        assert!(
            m.dup_anchors_merged > 0,
            "a 2 kb overlap straddle must produce duplicate hits"
        );
        assert_eq!(m.shards.len(), 2);
        assert_eq!(m.contigs, 1);
        assert!(m.shards.iter().all(|sm| sm.busy.as_nanos() > 0));
    }

    #[test]
    fn global_occurrence_cutoff_matches_unsharded_masking() {
        // Periodic reference: the dominant minimizer occurs far more
        // often globally than in any single shard, so a *local* cutoff
        // would unmask what the unsharded index masks.
        let s = seq(&"ACGTACGTACGTACGTACGTACGT".repeat(50));
        let flat = MinimizerIndex::build_params(&s, 4, 8, 2);
        let read = s.slice(100, 300);
        let expected = collect_anchors(&read, &flat);
        for shards in [2, 5] {
            let idx = ShardedIndex::build_params(single(&s), shards, 64, 4, 8, 2);
            assert_eq!(
                idx.collect_anchors(&read),
                expected,
                "masking diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn candidates_equal_unsharded_tasks() {
        let s = mixed_seq(40_000, 17);
        let read = s.slice(12_000, 1_500).reverse_complement();
        let flat = MinimizerIndex::build(&s);
        let params = CandidateParams::default();
        let expected = crate::candidates_for_read(3, &read, &s, &flat, &params);
        assert!(!expected.is_empty());
        for shards in [1, 3, 7] {
            let idx = ShardedIndex::build(single(&s), shards, 256);
            assert_eq!(
                idx.candidates_for_read(3, &read, &params),
                expected,
                "candidate tasks diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn stats_variant_returns_identical_tasks_and_consistent_counts() {
        let s = mixed_seq(40_000, 23);
        let params = CandidateParams::default();
        let idx = ShardedIndex::build(single(&s), 3, 256);
        // Mappable read: counts populate every stage, tasks match the
        // plain path bit for bit.
        let read = s.slice(9_000, 1_200);
        let plain = idx.candidates_for_read(4, &read, &params);
        let (tasks, st) = idx.candidates_for_read_stats(4, &read, &params);
        assert_eq!(tasks, plain, "stats variant must not change tasks");
        assert!(!tasks.is_empty());
        assert_eq!(st.candidates, tasks.len() as u64);
        assert!(st.anchors >= st.chains && st.chains >= st.candidates);
        assert_eq!(st.unmapped_reason(), None);
        // Unrelated read: the funnel pinpoints the first empty stage.
        let junk = mixed_seq(500, 0xDEAD_BEEF);
        let (jt, js) = idx.candidates_for_read_stats(0, &junk, &params);
        if jt.is_empty() {
            let reason = js.unmapped_reason().expect("empty tasks need a reason");
            assert!(
                ["no_anchors", "no_chain", "no_candidates"].contains(&reason),
                "{reason}"
            );
        }
    }

    #[test]
    fn unmapped_reason_reflects_first_empty_stage() {
        let none = ReadMapStats::default();
        assert_eq!(none.unmapped_reason(), Some("no_anchors"));
        let anchored = ReadMapStats {
            anchors: 4,
            ..ReadMapStats::default()
        };
        assert_eq!(anchored.unmapped_reason(), Some("no_chain"));
        let chained = ReadMapStats {
            anchors: 4,
            chains: 1,
            ..ReadMapStats::default()
        };
        assert_eq!(chained.unmapped_reason(), Some("no_candidates"));
        let mapped = ReadMapStats {
            anchors: 4,
            chains: 1,
            candidates: 1,
        };
        assert_eq!(mapped.unmapped_reason(), None);
    }

    #[test]
    fn tiny_reference_survives_many_shards() {
        // Shorter than one winnowing window: the whole-contig shard
        // keeps the fallback minimizer; extra shards must not add any.
        let s = seq("ACGTACGTACGTACGTACG"); // 19 bases < w + k - 1
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        let read = s.clone();
        let expected = collect_anchors(&read, &flat);
        for shards in [1, 4, 16] {
            let idx = ShardedIndex::build_params(single(&s), shards, 64, 10, 15, 400);
            assert_eq!(idx.collect_anchors(&read), expected, "{shards} shards");
        }
    }

    #[test]
    fn empty_reference_yields_no_shards_and_no_anchors() {
        let idx = ShardedIndex::build(Reference::new(), 4, 64);
        assert_eq!(idx.num_shards(), 0);
        assert!(idx.collect_anchors(&mixed_seq(100, 1)).is_empty());
        assert_eq!(idx.distinct_minimizers(), 0);
        assert_eq!(idx.total_len(), 0);

        let empty_contig = ShardedIndex::build(Reference::single("ref", Seq::new()), 4, 64);
        assert_eq!(empty_contig.num_shards(), 0);
        assert!(empty_contig.collect_anchors(&mixed_seq(100, 1)).is_empty());
    }

    // ---- multi-contig behaviour ----

    /// A 3-contig reference with deliberately unequal contig sizes.
    fn multi(salt: u64) -> Reference {
        let mut r = Reference::new();
        r.push("chrA", mixed_seq(12_000, salt));
        r.push("chrB", mixed_seq(30_000, salt ^ 0xBEEF));
        r.push("chrC", mixed_seq(5_000, salt ^ 0xCAFE));
        r
    }

    #[test]
    fn shards_never_straddle_contig_boundaries() {
        for shards in [1, 2, 4, 7, 13] {
            let idx = ShardedIndex::build(multi(21), shards, 128);
            assert_eq!(idx.num_contigs(), 3);
            // Every non-empty contig has at least one shard, and every
            // shard's stored span lies inside exactly one contig.
            let m = idx.metrics();
            let mut seen = [false; 3];
            for sm in &m.shards {
                let off = idx.contig_offset(sm.contig);
                let len = idx.contig_len(sm.contig);
                assert!(
                    sm.start >= off && sm.end <= off + len,
                    "shard [{}, {}) leaks outside contig {} [{off}, {})",
                    sm.start,
                    sm.end,
                    sm.contig,
                    off + len
                );
                seen[sm.contig as usize] = true;
            }
            assert_eq!(seen, [true; 3], "a contig got no shard at {shards}");
        }
    }

    #[test]
    fn multi_contig_anchors_are_invariant_across_shard_counts() {
        let read = {
            let r = multi(33);
            // Straddle nothing: cut from the middle of chrB.
            r.contig(1).seq.slice(10_000, 1_200)
        };
        let baseline = ShardedIndex::build(multi(33), 1, 64).collect_anchors(&read);
        assert!(!baseline.is_empty(), "exact read must anchor");
        for shards in [2, 3, 7, 12] {
            let idx = ShardedIndex::build(multi(33), shards, 64);
            assert_eq!(
                idx.collect_anchors(&read),
                baseline,
                "anchors diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn multi_contig_candidates_are_invariant_and_contig_correct() {
        let r = multi(55);
        let read = r.contig(2).seq.slice(1_000, 1_400).reverse_complement();
        let params = CandidateParams::default();
        let baseline = ShardedIndex::build(multi(55), 1, 64).candidates_for_read(5, &read, &params);
        assert!(!baseline.is_empty(), "read must map");
        assert_eq!(baseline[0].contig, 2, "best candidate on the wrong contig");
        assert!(
            baseline[0].ref_pos.abs_diff(1_000) <= 200,
            "contig-local window start {} far from truth 1000",
            baseline[0].ref_pos
        );
        for shards in [2, 5, 9] {
            let idx = ShardedIndex::build(multi(55), shards, 64);
            assert_eq!(
                idx.candidates_for_read(5, &read, &params),
                baseline,
                "tasks diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn chains_never_span_contigs() {
        // Adversarial: chrA's tail and chrB's head are the *same*
        // sequence, so anchors land immediately on both sides of the
        // boundary — close enough in global coordinates that a
        // boundary-blind chaining DP (max_gap 5000) would fuse them.
        let shared = mixed_seq(3_000, 77);
        let mut r = Reference::new();
        let mut a = mixed_seq(9_000, 1).to_bases();
        a.extend(shared.iter());
        r.push("chrA", a.into_iter().collect());
        let mut b = shared.to_bases();
        b.extend(mixed_seq(9_000, 2).iter());
        r.push("chrB", b.into_iter().collect());

        // A read covering the shared block maps to both contigs.
        let read = shared.slice(500, 2_000);
        let idx = ShardedIndex::build(r, 4, 64);
        let chains = idx.chains_for_read(&read, &crate::ChainParams::default());
        assert!(chains.len() >= 2, "shared block must chain on both contigs");
        for (ci, c) in &chains {
            let len = idx.contig_len(*ci);
            assert!(
                c.ref_end <= len,
                "chain [{}, {}) leaks past contig {ci} length {len}",
                c.ref_start,
                c.ref_end
            );
        }
        // And the tasks cut from those chains stay inside their contig.
        for t in idx.candidates_for_read(0, &read, &CandidateParams::default()) {
            assert!(t.ref_pos + t.target.len() <= idx.contig_len(t.contig));
        }
    }

    #[test]
    fn window_stitches_across_shard_boundaries_exactly() {
        let r = multi(91);
        let originals: Vec<Seq> = r.contigs().iter().map(|c| c.seq.clone()).collect();
        let idx = ShardedIndex::build(r, 6, 64);
        for (ci, orig) in originals.iter().enumerate() {
            let len = orig.len();
            for (start, end) in [
                (0usize, len),
                (0, 1),
                (len - 1, len),
                (len / 3, 2 * len / 3),
                (0, len.min(37)),
            ] {
                assert_eq!(
                    idx.window(ci as u32, start, end),
                    orig.slice(start, end - start),
                    "window [{start}, {end}) of contig {ci} diverged"
                );
            }
        }
    }

    #[test]
    fn locate_inverts_the_global_layout() {
        let idx = ShardedIndex::build(multi(13), 3, 64);
        assert_eq!(idx.locate(0), (0, 0));
        assert_eq!(idx.locate(11_999), (0, 11_999));
        assert_eq!(idx.locate(12_000), (1, 0));
        assert_eq!(idx.locate(41_999), (1, 29_999));
        assert_eq!(idx.locate(42_000), (2, 0));
        assert_eq!(idx.locate(46_999), (2, 4_999));
        assert_eq!(idx.total_len(), 47_000);
        assert_eq!(idx.contig_name(1), "chrB");
    }

    #[test]
    fn persistent_workers_survive_many_queries_and_drop_cleanly() {
        let s = mixed_seq(20_000, 3);
        let idx = ShardedIndex::build_params(single(&s), 6, 64, 10, 15, 400);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        // Many sequential queries through the same worker pool must
        // stay correct (the per-read-spawn version trivially had this;
        // the pool must too).
        for i in 0..50 {
            let read = s.slice((i * 311) % 15_000, 1_000);
            assert_eq!(
                idx.collect_anchors(&read),
                collect_anchors(&read, &flat),
                "query {i} diverged"
            );
        }
        drop(idx); // Drop joins the worker threads; hangs would fail CI.
    }

    #[test]
    fn concurrent_queries_share_one_worker_pool() {
        let s = mixed_seq(30_000, 5);
        let idx = std::sync::Arc::new(ShardedIndex::build_params(single(&s), 5, 64, 10, 15, 400));
        let flat = std::sync::Arc::new(MinimizerIndex::build_params(&s, 10, 15, 400));
        let s = std::sync::Arc::new(s);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let idx = std::sync::Arc::clone(&idx);
            let flat = std::sync::Arc::clone(&flat);
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let read = s.slice(((t * 7 + i) * 997) as usize % 25_000, 900);
                    assert_eq!(
                        idx.collect_anchors(&read),
                        collect_anchors(&read, &flat),
                        "thread {t} query {i} diverged"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
