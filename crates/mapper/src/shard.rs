//! Sharded reference index with fan-out candidate generation.
//!
//! A single [`MinimizerIndex`] is the last monolithic stage in the
//! streaming pipeline: it is built in one pass over the whole reference
//! and queried from one thread. [`ShardedIndex`] splits the reference
//! into `S` fixed-size **overlapping** slices, builds one
//! `MinimizerIndex` per slice, fans anchor collection out across the
//! shards, and merges the per-shard hits deterministically (global
//! coordinate translation, stable sort, overlap dedup) before the
//! chaining DP runs once over the merged set.
//!
//! The load-bearing guarantee is **shard-count invariance**: for any
//! shard count and any overlap of at least one winnowing window
//! ([`ShardedIndex::min_overlap`] bases, enforced by the constructor),
//! the merged anchor stream — and therefore every chain, candidate
//! task, and output byte downstream — is *identical* to the unsharded
//! [`MinimizerIndex`] path. Three properties make that hold:
//!
//! 1. **Slice minimizers are reference minimizers.** Every full
//!    winnowing window of a slice is a window of the reference and
//!    selects the same k-mer, so slices are extracted with
//!    [`minimizers_windowed`] (no short-sequence fallback, which would
//!    invent minimizers from truncated windows). With overlap ≥ one
//!    window span, every reference window fits inside the shard owning
//!    its start, so the union over shards is the exact reference set.
//! 2. **The occurrence cutoff is global.** `max_occ` masking must see
//!    genome-wide occurrence counts, not per-shard counts (a repeat
//!    spread over shards could slip under a local cutoff). The build
//!    counts each distinct reference position once — overlap
//!    duplicates are detected against earlier shards — and lookups
//!    consult the global count.
//! 3. **The merge is canonical.** Per-shard anchors are translated to
//!    global coordinates, concatenated in shard order, sorted by
//!    `(read_pos, ref_pos, strand)` and deduplicated, which reproduces
//!    the unsharded anchor order exactly (read minimizers ascend in
//!    position; bucket hits ascend in reference position).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use align_core::{AlignTask, Seq};

use crate::candidates::{task_from_chain, CandidateParams};
use crate::chain::{chain_anchors, Anchor};
use crate::index::{minimizers, minimizers_windowed, MinimizerIndex};

/// One reference shard: a slice `[start, end)` of the reference with
/// its own minimizer index (positions local to the slice).
#[derive(Debug)]
struct Shard {
    /// Global start of the slice.
    start: usize,
    /// Global end of the slice (exclusive; includes the overlap).
    end: usize,
    /// Minimizer index over the slice.
    index: MinimizerIndex,
    /// Busy time spent collecting anchors in this shard, nanoseconds.
    busy_ns: AtomicU64,
    /// Anchors this shard contributed (before overlap dedup).
    anchors_found: AtomicU64,
}

impl Shard {
    /// Does this shard's bucket for `hash` contain global position
    /// `gpos`? (Bucket positions are ascending, so binary search.)
    fn contains(&self, hash: u64, gpos: u32) -> bool {
        let Some(local) = (gpos as usize).checked_sub(self.start) else {
            return false;
        };
        self.index
            .occurrences(hash)
            .binary_search_by_key(&(local as u32), |&(p, _)| p)
            .is_ok()
    }
}

/// Telemetry for one shard of a [`ShardedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Global span of the shard's slice.
    pub start: usize,
    /// End of the span (exclusive).
    pub end: usize,
    /// Time spent collecting anchors in this shard.
    pub busy: Duration,
    /// Anchors contributed before the overlap dedup.
    pub anchors: u64,
}

/// Telemetry snapshot of a [`ShardedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndexMetrics {
    /// Per-shard spans, busy time, and anchor counts.
    pub shards: Vec<ShardMetrics>,
    /// Duplicate anchors removed by the overlap merge.
    pub dup_anchors_merged: u64,
    /// Effective overlap in bases (after the exactness clamp).
    pub overlap: usize,
}

/// A minimizer index split into overlapping reference shards.
#[derive(Debug)]
pub struct ShardedIndex {
    /// Window length in k-mers.
    pub w: usize,
    /// k-mer length.
    pub k: usize,
    /// Reference length.
    pub ref_len: usize,
    /// Global occurrence cutoff (see [`MinimizerIndex::max_occ`]).
    pub max_occ: usize,
    /// Effective overlap between consecutive shards, in bases.
    pub overlap: usize,
    shards: Vec<Shard>,
    /// Genome-wide occurrence count per hash (overlap-deduplicated).
    counts: HashMap<u64, u32>,
    /// Duplicate anchors removed by the merge, across all queries.
    dup_anchors: AtomicU64,
}

impl ShardedIndex {
    /// Build with minimap2-ish long-read defaults (`w = 10`, `k = 15`,
    /// `max_occ = 400`), matching [`MinimizerIndex::build`].
    pub fn build(reference: &Seq, shards: usize, overlap: usize) -> ShardedIndex {
        ShardedIndex::build_params(reference, shards, overlap, 10, 15, 400)
    }

    /// Build with explicit parameters. `shards` is clamped to at least
    /// 1 and `overlap` to at least `w + k` bases (one winnowing window
    /// plus slack — below that, windows spanning a shard boundary
    /// would fit in no shard and anchors would be lost).
    pub fn build_params(
        reference: &Seq,
        shards: usize,
        overlap: usize,
        w: usize,
        k: usize,
        max_occ: usize,
    ) -> ShardedIndex {
        let n = reference.len();
        let shards = shards.max(1);
        let overlap = overlap.max(w + k);
        let slice_len = n.div_ceil(shards).max(1);

        let mut built: Vec<Shard> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + slice_len + overlap).min(n);
            let slice = reference.slice(start, end - start);
            // The whole-reference shard keeps the short-sequence
            // fallback so `shards = 1` is bit-equal to the unsharded
            // index even on tiny references; every other shard emits
            // full-window minimizers only (see module docs).
            let ms = if start == 0 && end == n {
                minimizers(&slice, w, k)
            } else {
                minimizers_windowed(&slice, w, k)
            };
            built.push(Shard {
                start,
                end,
                index: MinimizerIndex::from_minimizers(ms, w, k, end - start, max_occ),
                busy_ns: AtomicU64::new(0),
                anchors_found: AtomicU64::new(0),
            });
            start += slice_len;
        }

        // Global occurrence counts: each distinct reference position
        // counts once. A position inside an overlap appears in more
        // than one shard; it is counted by the first shard that holds
        // it and skipped when a later shard sees it again.
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for si in 0..built.len() {
            for (hash, hits) in built[si].index.buckets() {
                for &(pos, _) in hits {
                    let gpos = (built[si].start + pos as usize) as u32;
                    let dup = (0..si)
                        .rev()
                        .take_while(|&j| built[j].end > gpos as usize)
                        .any(|j| built[j].contains(hash, gpos));
                    if !dup {
                        *counts.entry(hash).or_insert(0) += 1;
                    }
                }
            }
        }

        ShardedIndex {
            w,
            k,
            ref_len: n,
            max_occ,
            overlap,
            shards: built,
            counts,
            dup_anchors: AtomicU64::new(0),
        }
    }

    /// Number of reference shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global `[start, end)` span of each shard.
    pub fn shard_spans(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| (s.start, s.end)).collect()
    }

    /// Number of distinct indexed minimizer hashes, genome-wide
    /// (equals [`MinimizerIndex::distinct_minimizers`] of the
    /// unsharded index over the same reference).
    pub fn distinct_minimizers(&self) -> usize {
        self.counts.len()
    }

    /// Is this hash masked by the **global** occurrence cutoff?
    pub fn is_masked(&self, hash: u64) -> bool {
        self.counts
            .get(&hash)
            .is_some_and(|&c| c as usize > self.max_occ)
    }

    /// Collect the anchors of `read` against every shard and merge
    /// them into the canonical global anchor stream (identical to
    /// [`crate::collect_anchors`] against the unsharded index).
    ///
    /// Shards are queried concurrently (one worker per shard) when
    /// there is more than one; the merge is deterministic regardless.
    pub fn collect_anchors(&self, read: &Seq) -> Vec<Anchor> {
        // Apply the global occurrence mask once, up front, so the S
        // shard workers don't repeat the count lookups per minimizer.
        let mut read_mins = minimizers(read, self.w, self.k);
        read_mins.retain(|m| !self.is_masked(m.hash));
        let per_shard: Vec<Vec<Anchor>> = if self.shards.len() <= 1 {
            self.shards
                .iter()
                .map(|s| self.shard_anchors(s, &read_mins))
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|s| scope.spawn(|| self.shard_anchors(s, &read_mins)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
        };
        let mut anchors: Vec<Anchor> = per_shard.into_iter().flatten().collect();
        anchors.sort_unstable_by_key(|a| (a.read_pos, a.ref_pos, a.reverse));
        let before = anchors.len();
        anchors.dedup();
        self.dup_anchors
            .fetch_add((before - anchors.len()) as u64, Ordering::Relaxed);
        anchors
    }

    /// One shard's share of the fan-out: scan the read's (already
    /// mask-filtered) minimizers against the shard index, translating
    /// hits to global coordinates.
    fn shard_anchors(&self, shard: &Shard, read_mins: &[crate::Minimizer]) -> Vec<Anchor> {
        let t0 = Instant::now();
        let mut out = Vec::new();
        for m in read_mins {
            for &(pos, rflip) in shard.index.occurrences(m.hash) {
                out.push(Anchor {
                    read_pos: m.pos,
                    ref_pos: (shard.start + pos as usize) as u32,
                    reverse: m.flipped != rflip,
                });
            }
        }
        shard
            .anchors_found
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        shard
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Map one read through the sharded fan-out: merged anchors, one
    /// chaining pass, candidate tasks in global coordinates. Output is
    /// identical to [`crate::candidates_for_read`] on the unsharded
    /// index for every shard count.
    pub fn candidates_for_read(
        &self,
        read_id: u32,
        read: &Seq,
        reference: &Seq,
        params: &CandidateParams,
    ) -> Vec<AlignTask> {
        let anchors = self.collect_anchors(read);
        let chains = chain_anchors(&anchors, self.k, &params.chain);
        chains
            .iter()
            .take(params.max_per_read)
            .map(|c| task_from_chain(read_id, read, reference, c, params.flank))
            .collect()
    }

    /// Snapshot the per-shard telemetry accumulated so far.
    pub fn metrics(&self) -> ShardIndexMetrics {
        ShardIndexMetrics {
            shards: self
                .shards
                .iter()
                .map(|s| ShardMetrics {
                    start: s.start,
                    end: s.end,
                    busy: Duration::from_nanos(s.busy_ns.load(Ordering::Relaxed)),
                    anchors: s.anchors_found.load(Ordering::Relaxed),
                })
                .collect(),
            dup_anchors_merged: self.dup_anchors.load(Ordering::Relaxed),
            overlap: self.overlap,
        }
    }
}

impl ShardedIndex {
    /// Smallest overlap in bases that preserves shard-count invariance
    /// for `(w, k)` winnowing parameters;
    /// [`ShardedIndex::build_params`] clamps to it.
    pub fn min_overlap(w: usize, k: usize) -> usize {
        w + k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect_anchors;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    /// Pseudo-random but dependency-free test sequence.
    fn mixed_seq(len: usize, salt: u64) -> Seq {
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                align_core::Base::from_code((state >> 33) as u8 & 3)
            })
            .collect()
    }

    #[test]
    fn shard_spans_tile_the_reference_with_overlap() {
        let s = mixed_seq(10_000, 7);
        let idx = ShardedIndex::build_params(&s, 4, 100, 10, 15, 400);
        let spans = idx.shard_spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans.last().unwrap().1, 10_000);
        for pair in spans.windows(2) {
            // Next shard starts before the previous ends (overlap) and
            // slices advance by a fixed stride.
            assert!(pair[1].0 < pair[0].1);
            assert_eq!(pair[1].0 - pair[0].0, 2_500);
        }
    }

    #[test]
    fn overlap_is_clamped_to_exactness_floor() {
        let s = mixed_seq(5_000, 9);
        let idx = ShardedIndex::build_params(&s, 3, 0, 10, 15, 400);
        assert_eq!(idx.overlap, ShardedIndex::min_overlap(10, 15));
    }

    #[test]
    fn distinct_minimizers_match_unsharded_index() {
        let s = mixed_seq(30_000, 3);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        for shards in [1, 2, 3, 5, 8] {
            let idx = ShardedIndex::build_params(&s, shards, 64, 10, 15, 400);
            assert_eq!(
                idx.distinct_minimizers(),
                flat.distinct_minimizers(),
                "distinct hash count diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn anchors_equal_unsharded_for_every_shard_count() {
        let s = mixed_seq(20_000, 11);
        let read = s.slice(4_321, 1_200);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        let expected = collect_anchors(&read, &flat);
        assert!(!expected.is_empty(), "exact read must anchor");
        for shards in 1..=8 {
            let idx = ShardedIndex::build_params(&s, shards, 32, 10, 15, 400);
            assert_eq!(
                idx.collect_anchors(&read),
                expected,
                "anchor stream diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn overlap_duplicates_are_merged_and_counted() {
        let s = mixed_seq(20_000, 13);
        // A read straddling the shard boundary at 10_000 hits both
        // shards' overlap copies of the same positions.
        let read = s.slice(9_000, 2_000);
        let idx = ShardedIndex::build_params(&s, 2, 2_000, 10, 15, 400);
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        assert_eq!(idx.collect_anchors(&read), collect_anchors(&read, &flat));
        let m = idx.metrics();
        assert!(
            m.dup_anchors_merged > 0,
            "a 2 kb overlap straddle must produce duplicate hits"
        );
        assert_eq!(m.shards.len(), 2);
        assert!(m.shards.iter().all(|sm| sm.busy.as_nanos() > 0));
    }

    #[test]
    fn global_occurrence_cutoff_matches_unsharded_masking() {
        // Periodic reference: the dominant minimizer occurs far more
        // often globally than in any single shard, so a *local* cutoff
        // would unmask what the unsharded index masks.
        let s = seq(&"ACGTACGTACGTACGTACGTACGT".repeat(50));
        let flat = MinimizerIndex::build_params(&s, 4, 8, 2);
        let read = s.slice(100, 300);
        let expected = collect_anchors(&read, &flat);
        for shards in [2, 5] {
            let idx = ShardedIndex::build_params(&s, shards, 64, 4, 8, 2);
            assert_eq!(
                idx.collect_anchors(&read),
                expected,
                "masking diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn candidates_equal_unsharded_tasks() {
        let s = mixed_seq(40_000, 17);
        let read = s.slice(12_000, 1_500).reverse_complement();
        let flat = MinimizerIndex::build(&s);
        let params = CandidateParams::default();
        let expected = crate::candidates_for_read(3, &read, &s, &flat, &params);
        assert!(!expected.is_empty());
        for shards in [1, 3, 7] {
            let idx = ShardedIndex::build(&s, shards, 256);
            assert_eq!(
                idx.candidates_for_read(3, &read, &s, &params),
                expected,
                "candidate tasks diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn tiny_reference_survives_many_shards() {
        // Shorter than one winnowing window: the whole-reference shard
        // keeps the fallback minimizer; extra shards must not add any.
        let s = seq("ACGTACGTACGTACGTACG"); // 19 bases < w + k - 1
        let flat = MinimizerIndex::build_params(&s, 10, 15, 400);
        let read = s.clone();
        let expected = collect_anchors(&read, &flat);
        for shards in [1, 4, 16] {
            let idx = ShardedIndex::build_params(&s, shards, 64, 10, 15, 400);
            assert_eq!(idx.collect_anchors(&read), expected, "{shards} shards");
        }
    }

    #[test]
    fn empty_reference_yields_no_shards_and_no_anchors() {
        let s: Seq = std::iter::empty().collect();
        let idx = ShardedIndex::build(&s, 4, 64);
        assert_eq!(idx.num_shards(), 0);
        assert!(idx.collect_anchors(&mixed_seq(100, 1)).is_empty());
        assert_eq!(idx.distinct_minimizers(), 0);
    }
}
