//! Turning chains into alignment tasks.
//!
//! The paper aligns the (read, reference) pairs obtained from
//! minimap2's candidate locations. A chain tells us *where* on the
//! reference a read may map and on which strand; this module cuts the
//! corresponding reference window (with flanks, since chain ends are
//! anchor k-mer boundaries, not alignment boundaries), orients the read,
//! and emits an [`AlignTask`].

use align_core::{AlignTask, Seq, TaskBatch};

use crate::chain::{chain_anchors, collect_anchors, Chain, ChainParams};
use crate::index::MinimizerIndex;

/// Candidate-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CandidateParams {
    /// Chaining parameters.
    pub chain: ChainParams,
    /// Flank added on each side of the projected reference window.
    pub flank: usize,
    /// Hard cap on candidates per read (guards against degenerate
    /// repeat blowups; the paper's `-P` has no cap, so set this high).
    pub max_per_read: usize,
}

impl Default for CandidateParams {
    fn default() -> CandidateParams {
        CandidateParams {
            chain: ChainParams::default(),
            // Chain starts are anchor-precise; a small flank absorbs the
            // residual uncertainty. Large flanks would bury the window
            // pipeline's lock-on (GenASM aligns from the candidate
            // position, like the paper's pipeline).
            flank: 16,
            max_per_read: 10_000,
        }
    }
}

/// Map one read: produce all candidate alignment tasks (`-P` semantics).
///
/// The task's `query` is the read oriented to the mapping strand, so a
/// plain global alignment against the forward reference window follows.
pub fn candidates_for_read(
    read_id: u32,
    read: &Seq,
    reference: &Seq,
    index: &MinimizerIndex,
    params: &CandidateParams,
) -> Vec<AlignTask> {
    let anchors = collect_anchors(read, index);
    let chains = chain_anchors(&anchors, index.k, &params.chain);
    chains
        .iter()
        .take(params.max_per_read)
        .map(|c| task_from_chain(read_id, read, reference, c, params.flank))
        .collect()
}

/// Project a chain to its reference window `[start, end)`, clamped to
/// `[0, limit)` (the owning contig's length): extend the covered ref
/// interval by the uncovered read prefix/suffix on the proper sides.
///
/// The window start must be offset-free: GenASM's greedy window
/// pipeline (like the paper's) aligns from the candidate position,
/// and a leading pad creates many cost-equal garbage paths that can
/// derail its first-window lock-on. Anchors give the start exactly;
/// the flank goes on the trailing side only, where it merely costs
/// every aligner the same run of deletions.
pub fn chain_window(chain: &Chain, read_len: usize, limit: usize, flank: usize) -> (usize, usize) {
    let (pre, post) = if chain.reverse {
        (read_len - chain.read_end, chain.read_start)
    } else {
        (chain.read_start, read_len - chain.read_end)
    };
    let start = chain.ref_start.saturating_sub(pre);
    let end = (chain.ref_end + post + flank).min(limit);
    (start, end)
}

/// Headroom added to every edit-bound estimate: chain scores are
/// heuristic, and hints that undershoot force a full-budget rescue
/// rerun downstream, so erring a little wide is the cheaper mistake.
const HINT_SLACK: usize = 8;

/// Estimate an upper bound on the edit distance of a chain's candidate
/// alignment, used as the task's banding hint (`AlignTask::max_edits`).
///
/// The chain score approximates the number of read bases covered by
/// collinear anchors, so `read_len - score` bounds the bases that can
/// plausibly mismatch; the spread between the chain's read span and
/// reference span bounds its internal indels; and the query/target
/// length difference bounds the closing indel run (the trailing flank
/// is deleted inside the final alignment window, so it spends window
/// budget too). The estimate is deliberately conservative — a hint
/// that is too *tight* costs a rescue rerun, while one that is too
/// loose merely skips fewer rows. Correctness never depends on it.
pub fn edit_bound_hint(chain: &Chain, read_len: usize, target_len: usize) -> u32 {
    let uncovered = read_len.saturating_sub(chain.score as usize);
    let read_span = chain.read_end.saturating_sub(chain.read_start);
    let ref_span = chain.ref_end.saturating_sub(chain.ref_start);
    let indel = read_span.abs_diff(ref_span);
    let overhang = target_len.abs_diff(read_len);
    (uncovered + indel + overhang + HINT_SLACK).min(u32::MAX as usize) as u32
}

/// Project a chain to a reference window and build the task.
pub fn task_from_chain(
    read_id: u32,
    read: &Seq,
    reference: &Seq,
    chain: &Chain,
    flank: usize,
) -> AlignTask {
    let (start, end) = chain_window(chain, read.len(), reference.len(), flank);
    let target = reference.slice(start, end - start);
    let query = if chain.reverse {
        read.reverse_complement()
    } else {
        read.clone()
    };
    let hint = edit_bound_hint(chain, read.len(), target.len());
    AlignTask::new(read_id, start, query, target)
        .oriented(chain.reverse)
        .with_edit_bound(hint)
}

/// Map a whole read set into one batch of candidate tasks.
pub fn generate_batch(
    reads: &[(u32, Seq)],
    reference: &Seq,
    index: &MinimizerIndex,
    params: &CandidateParams,
) -> TaskBatch {
    let mut batch = TaskBatch::new();
    for (id, read) in reads {
        for t in candidates_for_read(*id, read, reference, index, params) {
            batch.push(t);
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Base;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_seq(len: usize, seed: u64) -> Seq {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..len)
            .map(|_| Base::from_code(rng.gen_range(0..4)))
            .collect()
    }

    #[test]
    fn perfect_read_yields_true_location() {
        let reference = random_seq(100_000, 1);
        let index = MinimizerIndex::build(&reference);
        let read = reference.slice(40_000, 2_000);
        let tasks = candidates_for_read(7, &read, &reference, &index, &CandidateParams::default());
        assert!(!tasks.is_empty(), "perfect read must map");
        let best = &tasks[0];
        assert_eq!(best.read_id, 7);
        assert!(
            best.ref_pos <= 40_000 && 40_000 - best.ref_pos <= 200,
            "window start {} too far from truth 40000",
            best.ref_pos
        );
        assert!(best.target.len() >= 2_000);
        // The window must contain the true origin entirely.
        assert!(best.ref_pos + best.target.len() >= 42_000);
    }

    #[test]
    fn rc_read_is_oriented() {
        let reference = random_seq(80_000, 2);
        let index = MinimizerIndex::build(&reference);
        let read = reference.slice(30_000, 1_500).reverse_complement();
        let tasks = candidates_for_read(0, &read, &reference, &index, &CandidateParams::default());
        assert!(!tasks.is_empty(), "rc read must map");
        let best = &tasks[0];
        // Oriented query must align nearly perfectly to the window.
        let d = align_core::nw_distance(&best.query, &best.target);
        assert!(
            d <= 2 * 64 + 32,
            "oriented candidate distance {d} too large"
        );
    }

    #[test]
    fn duplicated_locus_yields_multiple_candidates() {
        // Plant the same 3 kbp segment at three loci.
        let mut bases: Vec<Base> = random_seq(120_000, 3).to_bases();
        let unit: Vec<Base> = random_seq(3_000, 4).to_bases();
        for &at in &[10_000usize, 50_000, 90_000] {
            bases[at..at + 3_000].copy_from_slice(&unit);
        }
        let reference: Seq = bases.into_iter().collect();
        let index = MinimizerIndex::build(&reference);
        let read: Seq = unit[500..2_500].iter().copied().collect();
        let tasks = candidates_for_read(0, &read, &reference, &index, &CandidateParams::default());
        assert!(
            tasks.len() >= 3,
            "read from triplicated locus produced only {} candidates",
            tasks.len()
        );
    }

    #[test]
    fn unmappable_read_yields_nothing() {
        let reference = random_seq(50_000, 5);
        let index = MinimizerIndex::build(&reference);
        let read = random_seq(2_000, 999); // unrelated sequence
        let tasks = candidates_for_read(0, &read, &reference, &index, &CandidateParams::default());
        assert!(
            tasks.len() <= 1,
            "unrelated read should rarely chain, got {}",
            tasks.len()
        );
    }

    #[test]
    fn clean_read_hint_bounds_true_distance_and_stays_tight() {
        let reference = random_seq(100_000, 11);
        let index = MinimizerIndex::build(&reference);
        let read = reference.slice(40_000, 2_000);
        let tasks = candidates_for_read(1, &read, &reference, &index, &CandidateParams::default());
        assert!(!tasks.is_empty());
        let best = &tasks[0];
        let hint = best.max_edits.expect("mapper must attach an edit bound") as usize;
        // Sound: the hint upper-bounds the candidate's true distance
        // (otherwise every task would pay a rescue rerun downstream).
        let d = align_core::nw_distance(&best.query, &best.target);
        assert!(d <= hint, "hint {hint} below true distance {d}");
        // Useful: a clean, fully anchored read must get a bound well
        // under typical window budgets, not a vacuous one.
        assert!(hint <= 64, "hint {hint} too loose for a perfect read");
    }

    #[test]
    fn noisy_read_hint_grows_with_uncovered_bases() {
        let reference = random_seq(100_000, 12);
        let index = MinimizerIndex::build(&reference);
        let clean = reference.slice(20_000, 2_000);
        // Corrupt a contiguous stretch: its anchors disappear, the
        // chain score drops, and the hint must widen to cover it.
        let mut bases = clean.to_bases();
        for b in bases.iter_mut().take(1_200).skip(900) {
            *b = b.complement();
        }
        let noisy: Seq = bases.into_iter().collect();
        let params = CandidateParams::default();
        let ch = candidates_for_read(0, &clean, &reference, &index, &params);
        let nh = candidates_for_read(0, &noisy, &reference, &index, &params);
        assert!(!ch.is_empty() && !nh.is_empty());
        let clean_hint = ch[0].max_edits.unwrap();
        let noisy_hint = nh[0].max_edits.unwrap();
        assert!(
            noisy_hint >= clean_hint + 200,
            "corrupting 300 bases must widen the hint ({clean_hint} -> {noisy_hint})"
        );
    }

    #[test]
    fn batch_generation_counts() {
        let reference = random_seq(60_000, 6);
        let index = MinimizerIndex::build(&reference);
        let reads: Vec<(u32, Seq)> = (0..5u32)
            .map(|i| (i, reference.slice(5_000 + i as usize * 9_000, 1_200)))
            .collect();
        let batch = generate_batch(&reads, &reference, &index, &CandidateParams::default());
        assert!(batch.len() >= 5);
        assert!(batch.total_query_bases() >= 5 * 1_200);
    }
}
