//! Minimizer extraction and reference indexing (minimap2-style).
//!
//! A *minimizer* is the k-mer with the smallest hash in every window of
//! `w` consecutive k-mers (Roberts et al. 2004). We use canonical
//! k-mers (the smaller of the k-mer and its reverse complement) so a
//! read and its reverse complement sample the same positions, and an
//! invertible 64-bit mix as the ordering hash, like minimap2.

use align_core::Seq;
use std::collections::HashMap;

/// One extracted minimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Minimizer {
    /// Start position of the k-mer in the sequence.
    pub pos: u32,
    /// Hash of the canonical k-mer.
    pub hash: u64,
    /// True when the canonical form is the reverse complement.
    pub flipped: bool,
}

/// Invertible 64-bit integer mix (Thomas Wang / minimap2's hash64).
#[inline]
pub fn hash64(key: u64, mask: u64) -> u64 {
    let mut k = key & mask;
    k = (!k).wrapping_add(k << 21) & mask;
    k ^= k >> 24;
    k = (k.wrapping_add(k << 3)).wrapping_add(k << 8) & mask;
    k ^= k >> 14;
    k = (k.wrapping_add(k << 2)).wrapping_add(k << 4) & mask;
    k ^= k >> 28;
    k = k.wrapping_add(k << 31) & mask;
    k
}

/// Extract the `(w, k)` minimizers of `seq`.
///
/// Ties within a window keep the rightmost k-mer (robust winnowing).
/// Sequences shorter than one full window still yield their global
/// minimum so short sequences stay indexable.
pub fn minimizers(seq: &Seq, w: usize, k: usize) -> Vec<Minimizer> {
    minimizers_impl(seq, w, k, true)
}

/// Like [`minimizers`], but only emits minimizers selected by *full*
/// windows of `w` k-mers — no short-sequence fallback.
///
/// Shard slices use this: every window of a slice is also a window of
/// the full reference and selects the same k-mer, so a slice's
/// full-window minimizers are exactly the reference minimizers whose
/// selecting window fits in the slice. The fallback would instead
/// invent minimizers from truncated windows that the unsharded index
/// does not have, breaking shard-count invariance.
pub fn minimizers_windowed(seq: &Seq, w: usize, k: usize) -> Vec<Minimizer> {
    minimizers_impl(seq, w, k, false)
}

fn minimizers_impl(seq: &Seq, w: usize, k: usize, short_fallback: bool) -> Vec<Minimizer> {
    assert!((1..=31).contains(&k), "k must be in 1..=31");
    assert!(w >= 1, "w must be positive");
    let n = seq.len();
    if n < k {
        return Vec::new();
    }
    let mask: u64 = (1u64 << (2 * k)) - 1;
    let shift = 2 * (k - 1) as u64;
    let mut fwd: u64 = 0;
    let mut rev: u64 = 0;
    // Rolling hashes of every k-mer.
    let nk = n - k + 1;
    let mut hashes: Vec<(u64, bool)> = Vec::with_capacity(nk);
    for i in 0..n {
        let c = seq.get_code(i) as u64;
        fwd = ((fwd << 2) | c) & mask;
        rev = (rev >> 2) | ((3 - c) << shift);
        if i + 1 >= k {
            let (canon, flipped) = if fwd <= rev {
                (fwd, false)
            } else {
                (rev, true)
            };
            hashes.push((hash64(canon, mask), flipped));
        }
    }
    // Winnowing with a monotone deque over windows of `w` k-mers.
    let mut out: Vec<Minimizer> = Vec::new();
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let push_out = |out: &mut Vec<Minimizer>, idx: usize, hashes: &[(u64, bool)]| {
        let m = Minimizer {
            pos: idx as u32,
            hash: hashes[idx].0,
            flipped: hashes[idx].1,
        };
        if out.last() != Some(&m) {
            out.push(m);
        }
    };
    for i in 0..nk {
        while let Some(&back) = deque.back() {
            // `>=` keeps the rightmost minimum on ties.
            if hashes[back].0 >= hashes[i].0 {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        let win_start = i + 1;
        if win_start >= w {
            while *deque.front().expect("nonempty deque") + w <= i {
                deque.pop_front();
            }
            push_out(&mut out, *deque.front().unwrap(), &hashes);
        }
    }
    if nk < w && nk > 0 && short_fallback {
        // Sequence shorter than one full window: keep its global minimum
        // so short sequences are still indexable.
        push_out(&mut out, *deque.front().unwrap(), &hashes);
    }
    out
}

/// A minimizer index over a reference sequence.
#[derive(Debug)]
pub struct MinimizerIndex {
    /// Window length in k-mers.
    pub w: usize,
    /// k-mer length.
    pub k: usize,
    /// Reference length.
    pub ref_len: usize,
    /// hash -> positions/orientations in the reference.
    buckets: HashMap<u64, Vec<(u32, bool)>>,
    /// Occurrence cutoff: hashes hit more often than this are masked
    /// (minimap2's high-frequency filter, `-f`).
    pub max_occ: usize,
}

impl MinimizerIndex {
    /// Build an index with minimap2-ish long-read defaults
    /// (`w = 10`, `k = 15`).
    pub fn build(reference: &Seq) -> MinimizerIndex {
        MinimizerIndex::build_params(reference, 10, 15, 400)
    }

    /// Build with explicit parameters.
    pub fn build_params(reference: &Seq, w: usize, k: usize, max_occ: usize) -> MinimizerIndex {
        MinimizerIndex::from_minimizers(minimizers(reference, w, k), w, k, reference.len(), max_occ)
    }

    /// Build from a precomputed minimizer list (the sharded build path,
    /// where slices are extracted with [`minimizers_windowed`]).
    pub fn from_minimizers(
        ms: Vec<Minimizer>,
        w: usize,
        k: usize,
        ref_len: usize,
        max_occ: usize,
    ) -> MinimizerIndex {
        let mut buckets: HashMap<u64, Vec<(u32, bool)>> = HashMap::new();
        for m in ms {
            buckets.entry(m.hash).or_default().push((m.pos, m.flipped));
        }
        MinimizerIndex {
            w,
            k,
            ref_len,
            buckets,
            max_occ,
        }
    }

    /// Number of distinct indexed minimizer hashes.
    pub fn distinct_minimizers(&self) -> usize {
        self.buckets.len()
    }

    /// Look up a hash; respects the occurrence cutoff.
    pub fn lookup(&self, hash: u64) -> &[(u32, bool)] {
        match self.buckets.get(&hash) {
            Some(v) if v.len() <= self.max_occ => v,
            _ => &[],
        }
    }

    /// Occurrence list for a hash, **ignoring** the cutoff. Positions
    /// are ascending (minimizers are extracted left to right). The
    /// sharded index uses this and applies its own *global* cutoff.
    pub fn occurrences(&self, hash: u64) -> &[(u32, bool)] {
        self.buckets.get(&hash).map_or(&[], Vec::as_slice)
    }

    /// Iterate every `(hash, occurrences)` bucket, ignoring the cutoff.
    /// Iteration order is unspecified (callers must not depend on it).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, &[(u32, bool)])> {
        self.buckets.iter().map(|(&h, v)| (h, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn hash64_is_deterministic_and_masked() {
        let mask = (1u64 << 30) - 1;
        let h1 = hash64(12345, mask);
        assert_eq!(h1, hash64(12345, mask));
        assert!(h1 <= mask);
        assert_ne!(hash64(1, mask), hash64(2, mask));
    }

    #[test]
    fn minimizers_cover_sequence() {
        let s = seq(&"ACGTTGCAGGATCCATGGTACCAT".repeat(10));
        let ms = minimizers(&s, 5, 7);
        assert!(!ms.is_empty());
        // Winnowing guarantee: gap between consecutive minimizers < w + k.
        for pair in ms.windows(2) {
            assert!(
                (pair[1].pos - pair[0].pos) as usize <= 5 + 7,
                "winnowing gap violated"
            );
        }
    }

    #[test]
    fn short_sequence_still_yields_minimizer() {
        let s = seq("ACGTACGTAC"); // 10 bases, k=7 -> 4 k-mers < w=10
        let ms = minimizers(&s, 10, 7);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn sequence_shorter_than_k_yields_nothing() {
        assert!(minimizers(&seq("ACG"), 5, 7).is_empty());
    }

    #[test]
    fn canonical_minimizers_shared_with_rc() {
        let s = seq(&"ACGTTGCAGGATCCATGGTACCATAAGGCCTT".repeat(8));
        let rc = s.reverse_complement();
        let mut h1: Vec<u64> = minimizers(&s, 5, 11).iter().map(|m| m.hash).collect();
        let mut h2: Vec<u64> = minimizers(&rc, 5, 11).iter().map(|m| m.hash).collect();
        h1.sort_unstable();
        h1.dedup();
        h2.sort_unstable();
        h2.dedup();
        // The hash *sets* must be identical (positions differ).
        assert_eq!(h1, h2);
    }

    #[test]
    fn index_lookup_roundtrip() {
        let s = seq(&"ACGTTGCAGGATCCAT".repeat(20));
        let idx = MinimizerIndex::build_params(&s, 5, 9, 1000);
        assert!(idx.distinct_minimizers() > 0);
        let ms = minimizers(&s, 5, 9);
        // Every extracted minimizer must be findable at its position.
        for m in &ms {
            let hits = idx.lookup(m.hash);
            assert!(hits.iter().any(|&(p, _)| p == m.pos));
        }
    }

    #[test]
    fn max_occ_masks_repetitive_hashes() {
        let s = seq(&"ACGTACGTACGTACGTACGTACGT".repeat(50));
        let idx = MinimizerIndex::build_params(&s, 4, 8, 2);
        // The dominant periodic minimizer occurs way more than twice.
        let over_cutoff = idx.buckets.values().filter(|v| v.len() > 2).count();
        assert!(over_cutoff > 0, "expected repetitive hashes in this input");
        for (h, v) in &idx.buckets {
            if v.len() > 2 {
                assert!(idx.lookup(*h).is_empty());
            }
        }
    }
}
