//! Property tests of the sharded index: for random references and
//! reads, the merged candidate stream from [`ShardedIndex`] must equal
//! the unsharded [`MinimizerIndex`] path — anchors, chains, and tasks —
//! for every shard count and every overlap at or above the exactness
//! floor. Multi-contig references must additionally be shard-count
//! invariant, equal to an independent per-contig oracle, and resident
//! only in shard-local storage after the build.
//!
//! The `#[ignore]`d tests at the bottom sweep the full shard-count ×
//! overlap grid on larger inputs; CI runs them in a dedicated
//! `cargo test -- --ignored` job.

use align_core::{Base, Reference, Seq};
use mapper::{collect_anchors, CandidateParams, MinimizerIndex, ShardedIndex};
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn arb_seq(min: usize, max: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

/// Wrap a single sequence as the one-contig reference the legacy
/// equivalence properties exercise.
fn single(s: &Seq) -> Reference {
    Reference::single("ref", s.clone())
}

/// Mutate `read` with substitutions/indels at `rate` — sharding must
/// be invariant for noisy reads, not just exact substrings.
fn mutate(read: &Seq, rate: f64, seed: u64) -> Seq {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out: Vec<Base> = Vec::with_capacity(read.len() + 16);
    for i in 0..read.len() {
        if rng.gen_bool(rate) {
            match rng.gen_range(0..3) {
                0 => out.push(Base::from_code(rng.gen_range(0..4))), // substitution
                1 => {
                    // insertion
                    out.push(Base::from_code(read.get_code(i)));
                    out.push(Base::from_code(rng.gen_range(0..4)));
                }
                _ => {} // deletion
            }
        } else {
            out.push(Base::from_code(read.get_code(i)));
        }
    }
    out.into_iter().collect()
}

/// Assert every sharded view of `reference` agrees with the flat index
/// for `read`: anchor stream and candidate tasks.
fn assert_equivalent(reference: &Seq, read: &Seq, shards: usize, overlap: usize) {
    let flat = MinimizerIndex::build(reference);
    let sharded = ShardedIndex::build(single(reference), shards, overlap);
    assert_eq!(
        sharded.collect_anchors(read),
        collect_anchors(read, &flat),
        "anchor stream diverged at shards={shards} overlap={overlap}"
    );
    let params = CandidateParams::default();
    assert_eq!(
        sharded.candidates_for_read(9, read, &params),
        mapper::candidates_for_read(9, read, reference, &flat, &params),
        "candidate tasks diverged at shards={shards} overlap={overlap}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_candidates_equal_unsharded(
        s in arb_seq(3_000, 8_000),
        shards in 1usize..=8,
        overlap in 0usize..400,
        off_frac in 0.0f64..0.6,
        rc in proptest::any::<bool>(),
    ) {
        let read_len = 700.min(s.len() / 2);
        let start = ((s.len() - read_len) as f64 * off_frac) as usize;
        let mut read = s.slice(start, read_len);
        if rc {
            read = read.reverse_complement();
        }
        assert_equivalent(&s, &read, shards, overlap);
    }

    #[test]
    fn sharded_candidates_equal_unsharded_for_noisy_reads(
        s in arb_seq(4_000, 9_000),
        shards in 2usize..=8,
        seed in 0u64..1_000,
    ) {
        let read = mutate(&s.slice(s.len() / 4, 900), 0.08, seed);
        assert_equivalent(&s, &read, shards, 64);
    }

    #[test]
    fn global_masking_matches_unsharded(
        period in 4usize..12,
        repeats in 40usize..120,
        shards in 2usize..=6,
    ) {
        // Periodic references push repeat hashes over the cutoff
        // globally while each shard's local count stays under it — the
        // failure mode a per-shard cutoff would exhibit.
        let unit: Vec<u8> = (0..period).map(|i| (i * 7 % 4) as u8).collect();
        let s: Seq = unit
            .iter()
            .cycle()
            .take(period * repeats)
            .map(|&c| Base::from_code(c))
            .collect();
        let flat = MinimizerIndex::build_params(&s, 4, 8, 3);
        let sharded = ShardedIndex::build_params(single(&s), shards, 64, 4, 8, 3);
        let read = s.slice(s.len() / 3, (s.len() / 2).min(400));
        prop_assert_eq!(
            sharded.collect_anchors(&read),
            collect_anchors(&read, &flat)
        );
        prop_assert_eq!(sharded.distinct_minimizers(), flat.distinct_minimizers());
    }

    /// Multi-contig: the sharded result must be invariant in the shard
    /// count *and* agree with an independent per-contig oracle (each
    /// contig chained against its own flat index, chains merged by
    /// score with contig order as the stable tiebreak).
    #[test]
    fn multi_contig_candidates_equal_per_contig_oracle(
        a in arb_seq(2_000, 5_000),
        b in arb_seq(3_000, 7_000),
        c in arb_seq(1_000, 2_500),
        shards in 1usize..=7,
        from in 0usize..3,
        rc in proptest::any::<bool>(),
    ) {
        let contigs = [a, b, c];
        let src = &contigs[from];
        let read_len = 600.min(src.len() / 2);
        let mut read = src.slice(src.len() / 4, read_len);
        if rc {
            read = read.reverse_complement();
        }
        let mut reference = Reference::new();
        for (i, s) in contigs.iter().enumerate() {
            reference.push(&format!("c{i}"), s.clone());
        }
        let params = CandidateParams::default();
        let got = ShardedIndex::build(reference, shards, 64)
            .candidates_for_read(4, &read, &params);
        let want = per_contig_oracle(&contigs, &read, &params);
        prop_assert_eq!(got, want, "diverged at shards={}", shards);
    }
}

/// Independent multi-contig oracle built only from the *unsharded*
/// single-sequence primitives: per-contig anchors and chains, merged
/// by score (stable, contig order breaking ties), tasks cut from the
/// original contig sequences.
fn per_contig_oracle(
    contigs: &[Seq],
    read: &Seq,
    params: &CandidateParams,
) -> Vec<align_core::AlignTask> {
    let mut merged: Vec<(u32, mapper::Chain)> = Vec::new();
    for (ci, seq) in contigs.iter().enumerate() {
        let flat = MinimizerIndex::build(seq);
        let anchors = collect_anchors(read, &flat);
        for chain in mapper::chain_anchors(&anchors, flat.k, &params.chain) {
            merged.push((ci as u32, chain));
        }
    }
    merged.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));
    merged
        .iter()
        .take(params.max_per_read)
        .map(|(ci, chain)| {
            mapper::task_from_chain(4, read, &contigs[*ci as usize], chain, params.flank)
                .in_contig(*ci)
        })
        .collect()
}

/// Contig-boundary-adversarial reference: neighbouring contigs share
/// sequence at the junction, contigs of wildly different sizes, one
/// contig shorter than a winnowing window, and one empty contig.
#[test]
fn boundary_adversarial_reference_is_shard_invariant() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0DA);
    let rand_seq = |rng: &mut ChaCha8Rng, n: usize| -> Seq {
        (0..n)
            .map(|_| Base::from_code(rng.gen_range(0..4)))
            .collect()
    };
    let shared = rand_seq(&mut rng, 2_000);
    let mut chr_a = rand_seq(&mut rng, 6_000).to_bases();
    chr_a.extend(shared.iter()); // chrA ends with the shared block
    let mut chr_b = shared.to_bases(); // chrB starts with it
    chr_b.extend(rand_seq(&mut rng, 11_000).iter());

    let build = |shards: usize| {
        let mut r = Reference::new();
        r.push("chrA", chr_a.iter().copied().collect());
        r.push("chrB", chr_b.iter().copied().collect());
        r.push("tiny", Seq::from_ascii(b"ACGTACGTACGTACG").unwrap()); // < w+k-1
        r.push("void", Seq::new());
        r.push("chrC", rand_seq(&mut ChaCha8Rng::seed_from_u64(9), 4_000));
        ShardedIndex::build(r, shards, 64)
    };

    let params = CandidateParams::default();
    // Reads: the shared junction block (maps to both contigs), a
    // boundary-straddling slice of chrA, a noisy chrB read, the tiny
    // contig itself.
    let reads: Vec<Seq> = vec![
        shared.slice(200, 1_500),
        chr_a.iter().copied().collect::<Seq>().slice(5_200, 2_000),
        mutate(
            &chr_b.iter().copied().collect::<Seq>().slice(4_000, 1_200),
            0.08,
            7,
        ),
        Seq::from_ascii(b"ACGTACGTACGTACG").unwrap(),
    ];
    let baseline_idx = build(1);
    for (ri, read) in reads.iter().enumerate() {
        let baseline = baseline_idx.candidates_for_read(ri as u32, read, &params);
        for shards in [2, 3, 5, 11] {
            let idx = build(shards);
            assert_eq!(
                idx.candidates_for_read(ri as u32, read, &params),
                baseline,
                "read {ri} diverged at {shards} shards"
            );
        }
    }
    // The junction read really does map to both flanking contigs, and
    // no task leaks past a contig boundary.
    let tasks = baseline_idx.candidates_for_read(0, &reads[0], &params);
    let contigs_hit: std::collections::HashSet<u32> = tasks.iter().map(|t| t.contig).collect();
    assert!(
        contigs_hit.contains(&0) && contigs_hit.contains(&1),
        "junction read must map to chrA and chrB, hit {contigs_hit:?}"
    );
    for t in &tasks {
        assert!(
            t.ref_pos + t.target.len() <= baseline_idx.contig_len(t.contig),
            "task leaks past its contig boundary"
        );
    }
}

/// Residency: after the build, the only resident reference bytes are
/// the shard-local slices — each at most one tile + overlap — and the
/// total is the tiling sum, not a second full copy. Together with
/// `ShardedIndex::build` *consuming* the `Reference` (every contig
/// `Seq` is dropped inside the build), this proves the monolithic
/// reference no longer exists after index construction.
#[test]
fn reference_residency_is_shard_local_after_build() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51DE);
    let lens = [23_000usize, 9_000, 41_000, 500];
    let mut reference = Reference::new();
    let mut total_packed = 0usize;
    for (i, &len) in lens.iter().enumerate() {
        let s: Seq = (0..len)
            .map(|_| Base::from_code(rng.gen_range(0..4)))
            .collect();
        total_packed += s.packed_bytes();
        reference.push(&format!("chr{i}"), s);
    }
    let total: usize = lens.iter().sum();
    let shards = 6;
    let overlap = 256;
    let idx = ShardedIndex::build(reference, shards, overlap);

    // Per-shard cap: every stored slice is at most one ownership tile
    // plus the overlap flank.
    let slice_len = total.div_ceil(shards);
    for (start, end) in idx.shard_spans() {
        assert!(
            end - start <= slice_len + overlap,
            "shard [{start}, {end}) stores more than tile + overlap"
        );
    }
    // Aggregate: the resident bytes are the tiling sum — the packed
    // reference plus at most one packed overlap per shard (+1 byte per
    // shard for 2-bit padding). A retained monolithic copy would
    // roughly double this.
    let resident = idx.resident_reference_bytes();
    let slack = idx.num_shards() * (overlap.div_ceil(4) + 1);
    assert!(
        resident <= total_packed + slack,
        "resident {resident} bytes exceeds shard-local bound {} — \
         a monolithic reference copy survived the build",
        total_packed + slack
    );
    assert!(
        resident >= total_packed,
        "shards must store at least every reference base once"
    );
    // The metrics snapshot reports the same number.
    assert_eq!(idx.metrics().reference_bytes, resident);
    // And candidate windows come out of that storage, byte-exact:
    // spot-check a window against a freshly regenerated contig.
    let mut rng = ChaCha8Rng::seed_from_u64(0x51DE);
    let chr0: Seq = (0..lens[0])
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    assert_eq!(idx.window(0, 11_000, 14_000), chr0.slice(11_000, 3_000));
}

/// Exhaustive grid: shard counts 1..8 × overlaps from the exactness
/// floor up, over a larger reference and a panel of reads (exact,
/// reverse-complement, noisy, straddling every shard boundary). Slow;
/// run with `cargo test -- --ignored` (CI has a dedicated job).
#[test]
#[ignore = "slow exhaustive shard/overlap sweep; CI runs it in the --ignored job"]
fn exhaustive_shard_overlap_grid() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15C);
    let reference: Seq = (0..120_000)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let flat = MinimizerIndex::build(&reference);
    let params = CandidateParams::default();
    let floor = ShardedIndex::min_overlap(flat.w, flat.k);

    for shards in 1..=8 {
        for overlap in [floor, 64, 256, 2_048] {
            let sharded = ShardedIndex::build(single(&reference), shards, overlap);
            let spans = sharded.shard_spans();
            // Read panel: one exact read per shard boundary (straddling
            // it), plus an RC read and a noisy read per shard.
            let mut reads: Vec<Seq> = Vec::new();
            for span in &spans {
                if span.0 > 0 {
                    let start = span.0.saturating_sub(500);
                    reads.push(reference.slice(start, 1_000.min(reference.len() - start)));
                }
                let mid = span.0 + (span.1 - span.0) / 2;
                let len = 800.min(reference.len() - mid);
                if len > 100 {
                    reads.push(reference.slice(mid, len).reverse_complement());
                    reads.push(mutate(
                        &reference.slice(mid, len),
                        0.10,
                        (shards * 1_000 + overlap) as u64,
                    ));
                }
            }
            for (i, read) in reads.iter().enumerate() {
                assert_eq!(
                    sharded.collect_anchors(read),
                    collect_anchors(read, &flat),
                    "anchors diverged: shards={shards} overlap={overlap} read={i}"
                );
                assert_eq!(
                    sharded.candidates_for_read(i as u32, read, &params),
                    mapper::candidates_for_read(i as u32, read, &reference, &flat, &params),
                    "tasks diverged: shards={shards} overlap={overlap} read={i}"
                );
            }
        }
    }
}

/// Batch-level equivalence on a simulated multi-read workload, sharded
/// eight ways with the minimum exact overlap.
#[test]
#[ignore = "slow batch sweep; CI runs it in the --ignored job"]
fn batch_candidates_equal_unsharded_at_minimum_overlap() {
    let mut rng = ChaCha8Rng::seed_from_u64(7_431);
    let reference: Seq = (0..90_000)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let flat = MinimizerIndex::build(&reference);
    let sharded = ShardedIndex::build(
        single(&reference),
        8,
        ShardedIndex::min_overlap(flat.w, flat.k),
    );
    let params = CandidateParams::default();
    for r in 0..40u32 {
        let start = rng.gen_range(0..reference.len() - 1_200);
        let mut read = mutate(&reference.slice(start, 1_200), 0.06, r as u64);
        if r % 2 == 1 {
            read = read.reverse_complement();
        }
        assert_eq!(
            sharded.candidates_for_read(r, &read, &params),
            mapper::candidates_for_read(r, &read, &reference, &flat, &params),
            "read {r} diverged"
        );
    }
}
