//! Property tests of the sharded index: for random references and
//! reads, the merged candidate stream from [`ShardedIndex`] must equal
//! the unsharded [`MinimizerIndex`] path — anchors, chains, and tasks —
//! for every shard count and every overlap at or above the exactness
//! floor.
//!
//! The `#[ignore]`d tests at the bottom sweep the full shard-count ×
//! overlap grid on larger inputs; CI runs them in a dedicated
//! `cargo test -- --ignored` job.

use align_core::{Base, Seq};
use mapper::{collect_anchors, CandidateParams, MinimizerIndex, ShardedIndex};
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn arb_seq(min: usize, max: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

/// Mutate `read` with substitutions/indels at `rate` — sharding must
/// be invariant for noisy reads, not just exact substrings.
fn mutate(read: &Seq, rate: f64, seed: u64) -> Seq {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out: Vec<Base> = Vec::with_capacity(read.len() + 16);
    for i in 0..read.len() {
        if rng.gen_bool(rate) {
            match rng.gen_range(0..3) {
                0 => out.push(Base::from_code(rng.gen_range(0..4))), // substitution
                1 => {
                    // insertion
                    out.push(Base::from_code(read.get_code(i)));
                    out.push(Base::from_code(rng.gen_range(0..4)));
                }
                _ => {} // deletion
            }
        } else {
            out.push(Base::from_code(read.get_code(i)));
        }
    }
    out.into_iter().collect()
}

/// Assert every sharded view of `reference` agrees with the flat index
/// for `read`: anchor stream and candidate tasks.
fn assert_equivalent(reference: &Seq, read: &Seq, shards: usize, overlap: usize) {
    let flat = MinimizerIndex::build(reference);
    let sharded = ShardedIndex::build(reference, shards, overlap);
    assert_eq!(
        sharded.collect_anchors(read),
        collect_anchors(read, &flat),
        "anchor stream diverged at shards={shards} overlap={overlap}"
    );
    let params = CandidateParams::default();
    assert_eq!(
        sharded.candidates_for_read(9, read, reference, &params),
        mapper::candidates_for_read(9, read, reference, &flat, &params),
        "candidate tasks diverged at shards={shards} overlap={overlap}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_candidates_equal_unsharded(
        s in arb_seq(3_000, 8_000),
        shards in 1usize..=8,
        overlap in 0usize..400,
        off_frac in 0.0f64..0.6,
        rc in proptest::any::<bool>(),
    ) {
        let read_len = 700.min(s.len() / 2);
        let start = ((s.len() - read_len) as f64 * off_frac) as usize;
        let mut read = s.slice(start, read_len);
        if rc {
            read = read.reverse_complement();
        }
        assert_equivalent(&s, &read, shards, overlap);
    }

    #[test]
    fn sharded_candidates_equal_unsharded_for_noisy_reads(
        s in arb_seq(4_000, 9_000),
        shards in 2usize..=8,
        seed in 0u64..1_000,
    ) {
        let read = mutate(&s.slice(s.len() / 4, 900), 0.08, seed);
        assert_equivalent(&s, &read, shards, 64);
    }

    #[test]
    fn global_masking_matches_unsharded(
        period in 4usize..12,
        repeats in 40usize..120,
        shards in 2usize..=6,
    ) {
        // Periodic references push repeat hashes over the cutoff
        // globally while each shard's local count stays under it — the
        // failure mode a per-shard cutoff would exhibit.
        let unit: Vec<u8> = (0..period).map(|i| (i * 7 % 4) as u8).collect();
        let s: Seq = unit
            .iter()
            .cycle()
            .take(period * repeats)
            .map(|&c| Base::from_code(c))
            .collect();
        let flat = MinimizerIndex::build_params(&s, 4, 8, 3);
        let sharded = ShardedIndex::build_params(&s, shards, 64, 4, 8, 3);
        let read = s.slice(s.len() / 3, (s.len() / 2).min(400));
        prop_assert_eq!(
            sharded.collect_anchors(&read),
            collect_anchors(&read, &flat)
        );
        prop_assert_eq!(sharded.distinct_minimizers(), flat.distinct_minimizers());
    }
}

/// Exhaustive grid: shard counts 1..8 × overlaps from the exactness
/// floor up, over a larger reference and a panel of reads (exact,
/// reverse-complement, noisy, straddling every shard boundary). Slow;
/// run with `cargo test -- --ignored` (CI has a dedicated job).
#[test]
#[ignore = "slow exhaustive shard/overlap sweep; CI runs it in the --ignored job"]
fn exhaustive_shard_overlap_grid() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15C);
    let reference: Seq = (0..120_000)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let flat = MinimizerIndex::build(&reference);
    let params = CandidateParams::default();
    let floor = ShardedIndex::min_overlap(flat.w, flat.k);

    for shards in 1..=8 {
        for overlap in [floor, 64, 256, 2_048] {
            let sharded = ShardedIndex::build(&reference, shards, overlap);
            let spans = sharded.shard_spans();
            // Read panel: one exact read per shard boundary (straddling
            // it), plus an RC read and a noisy read per shard.
            let mut reads: Vec<Seq> = Vec::new();
            for span in &spans {
                if span.0 > 0 {
                    let start = span.0.saturating_sub(500);
                    reads.push(reference.slice(start, 1_000.min(reference.len() - start)));
                }
                let mid = span.0 + (span.1 - span.0) / 2;
                let len = 800.min(reference.len() - mid);
                if len > 100 {
                    reads.push(reference.slice(mid, len).reverse_complement());
                    reads.push(mutate(
                        &reference.slice(mid, len),
                        0.10,
                        (shards * 1_000 + overlap) as u64,
                    ));
                }
            }
            for (i, read) in reads.iter().enumerate() {
                assert_eq!(
                    sharded.collect_anchors(read),
                    collect_anchors(read, &flat),
                    "anchors diverged: shards={shards} overlap={overlap} read={i}"
                );
                assert_eq!(
                    sharded.candidates_for_read(i as u32, read, &reference, &params),
                    mapper::candidates_for_read(i as u32, read, &reference, &flat, &params),
                    "tasks diverged: shards={shards} overlap={overlap} read={i}"
                );
            }
        }
    }
}

/// Batch-level equivalence on a simulated multi-read workload, sharded
/// eight ways with the minimum exact overlap.
#[test]
#[ignore = "slow batch sweep; CI runs it in the --ignored job"]
fn batch_candidates_equal_unsharded_at_minimum_overlap() {
    let mut rng = ChaCha8Rng::seed_from_u64(7_431);
    let reference: Seq = (0..90_000)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let flat = MinimizerIndex::build(&reference);
    let sharded = ShardedIndex::build(&reference, 8, ShardedIndex::min_overlap(flat.w, flat.k));
    let params = CandidateParams::default();
    for r in 0..40u32 {
        let start = rng.gen_range(0..reference.len() - 1_200);
        let mut read = mutate(&reference.slice(start, 1_200), 0.06, r as u64);
        if r % 2 == 1 {
            read = read.reverse_complement();
        }
        assert_eq!(
            sharded.candidates_for_read(r, &read, &reference, &params),
            mapper::candidates_for_read(r, &read, &reference, &flat, &params),
            "read {r} diverged"
        );
    }
}
