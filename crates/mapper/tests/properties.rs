//! Property tests of the mapper: minimizer and chaining invariants on
//! random references.

use align_core::{Base, Seq};
use mapper::{
    chain_anchors, collect_anchors, minimizers, CandidateParams, ChainParams, MinimizerIndex,
};
use proptest::prelude::*;

fn arb_seq(min: usize, max: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, min..=max)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn winnowing_density_guarantee(s in arb_seq(100, 2_000), w in 2usize..16, k in 5usize..20) {
        let ms = minimizers(&s, w, k);
        prop_assume!(s.len() >= k + w);
        // At least one minimizer per window of w k-mers, and positions
        // strictly increasing with bounded gaps.
        prop_assert!(!ms.is_empty());
        for pair in ms.windows(2) {
            prop_assert!(pair[1].pos > pair[0].pos);
            prop_assert!((pair[1].pos - pair[0].pos) as usize <= w + k);
        }
        // Every minimizer position is a valid k-mer start.
        for m in &ms {
            prop_assert!(m.pos as usize + k <= s.len());
        }
    }

    #[test]
    fn strand_symmetry_of_minimizer_sets(s in arb_seq(200, 800)) {
        let rc = s.reverse_complement();
        let mut a: Vec<u64> = minimizers(&s, 8, 13).iter().map(|m| m.hash).collect();
        let mut b: Vec<u64> = minimizers(&rc, 8, 13).iter().map(|m| m.hash).collect();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn exact_substring_read_always_maps(s in arb_seq(3_000, 8_000), off_frac in 0.0f64..0.6) {
        let read_len = 800;
        let start = ((s.len() - read_len) as f64 * off_frac) as usize;
        let read = s.slice(start, read_len);
        let index = MinimizerIndex::build_params(&s, 10, 15, 1_000);
        let anchors = collect_anchors(&read, &index);
        prop_assert!(!anchors.is_empty(), "exact read produced no anchors");
        let chains = chain_anchors(&anchors, index.k, &ChainParams::default());
        prop_assert!(!chains.is_empty(), "exact read produced no chain");
        let best = &chains[0];
        // The best chain must sit on the true locus.
        prop_assert!(best.ref_start.abs_diff(start) < 400,
            "best chain at {} but truth at {start}", best.ref_start);
        prop_assert!(!best.reverse);
    }

    #[test]
    fn rc_read_maps_reverse(s in arb_seq(3_000, 6_000)) {
        let read = s.slice(1_000, 700).reverse_complement();
        let index = MinimizerIndex::build_params(&s, 10, 15, 1_000);
        let chains = chain_anchors(&collect_anchors(&read, &index), index.k,
                                   &ChainParams::default());
        prop_assert!(!chains.is_empty());
        prop_assert!(chains[0].reverse, "RC read must map to the reverse strand");
        prop_assert!(chains[0].ref_start.abs_diff(1_000) < 400);
    }

    #[test]
    fn chains_are_well_formed(s in arb_seq(2_000, 5_000), n_reads in 1usize..4) {
        let index = MinimizerIndex::build(&s);
        for r in 0..n_reads {
            let start = (r * 500) % (s.len() - 600);
            let read = s.slice(start, 600);
            let chains = chain_anchors(&collect_anchors(&read, &index), index.k,
                                       &ChainParams::default());
            for c in &chains {
                prop_assert!(c.read_start < c.read_end);
                prop_assert!(c.ref_start < c.ref_end);
                prop_assert!(c.read_end <= read.len());
                prop_assert!(c.ref_end <= s.len());
                prop_assert!(c.anchors >= ChainParams::default().min_anchors);
                prop_assert!(c.score >= ChainParams::default().min_score);
            }
            // Best-first ordering.
            for pair in chains.windows(2) {
                prop_assert!(pair[0].score >= pair[1].score);
            }
        }
    }

    #[test]
    fn candidate_tasks_are_alignable(s in arb_seq(4_000, 8_000)) {
        let read = s.slice(500, 1_000);
        let index = MinimizerIndex::build(&s);
        let tasks = mapper::candidates_for_read(0, &read, &s, &index,
                                                &CandidateParams::default());
        prop_assume!(!tasks.is_empty());
        let t = &tasks[0];
        // The primary candidate of an exact read must be near-exact.
        let d = align_core::doubling_nw_distance(&t.query, &t.target);
        prop_assert!(d <= CandidateParams::default().flank + 64,
            "primary candidate distance {d} too large");
    }
}
