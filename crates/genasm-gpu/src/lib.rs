//! # genasm-gpu
//!
//! GenASM on the simulated GPU: the paper's improved kernel (DP table
//! in shared memory, entry compression, early termination, DENT) and
//! the unimproved kernel (4-word entries, all rows, DP table in global
//! memory), both executing on the [`gpu_sim`] SIMT substrate.
//!
//! The kernels share the bit-level recurrence with `genasm-core`
//! ([`genasm_core::bitvec`]), and their CIGARs are property-tested to
//! be identical to the CPU implementation — the GPU port changes *where
//! the table lives and how it is computed in parallel*, never the
//! result.
//!
//! ```
//! use genasm_gpu::GpuAligner;
//! use gpu_sim::Device;
//! use align_core::{AlignTask, Seq};
//!
//! let gpu = GpuAligner::improved(Device::a6000());
//! let q = Seq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
//! let t = Seq::from_ascii(b"ACGTACCTACGTACGT").unwrap();
//! let report = gpu.align_batch(&[AlignTask::new(0, 0, q, t)]).unwrap();
//! assert_eq!(report.results[0].alignment.edit_distance, 1);
//! ```

pub mod batch;
pub mod kernel;

pub use batch::{GpuAligner, GpuBatchReport};
pub use kernel::{
    improved_table_words, shared_bytes_for, GenAsmKernel, GpuAlignment, KernelWorkspace, ROW_GROUP,
};
