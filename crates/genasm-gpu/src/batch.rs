//! Batch alignment on the simulated GPU.

use align_core::AlignTask;
use genasm_core::GenAsmConfig;
use gpu_sim::{BlockCounters, Device, SimError, TimingEstimate};

use crate::kernel::{shared_bytes_for, GenAsmKernel, GpuAlignment, ROW_GROUP};

/// Result of one GPU batch.
#[derive(Debug)]
pub struct GpuBatchReport {
    /// Per-task alignments, in task order.
    pub results: Vec<GpuAlignment>,
    /// Aggregated simulator counters.
    pub totals: BlockCounters,
    /// Modeled device time.
    pub timing: TimingEstimate,
    /// Host wall-clock spent simulating (not device time).
    pub host_ms: f64,
    /// Shared memory bytes per block used by the launch.
    pub shared_bytes: usize,
}

/// The GPU-side GenASM aligner: a device plus a configuration.
#[derive(Debug, Clone)]
pub struct GpuAligner {
    /// The simulated device.
    pub device: Device,
    /// GenASM configuration (decides the kernel flavour).
    pub cfg: GenAsmConfig,
}

impl GpuAligner {
    /// Improved kernel (all three improvements) on the given device.
    pub fn improved(device: Device) -> GpuAligner {
        GpuAligner {
            device,
            cfg: GenAsmConfig::improved(),
        }
    }

    /// Unimproved GenASM kernel on the given device.
    pub fn baseline(device: Device) -> GpuAligner {
        GpuAligner {
            device,
            cfg: GenAsmConfig::baseline(),
        }
    }

    /// Custom configuration.
    pub fn with_config(device: Device, cfg: GenAsmConfig) -> GpuAligner {
        cfg.validate();
        GpuAligner { device, cfg }
    }

    /// Shared memory per block this configuration will request.
    pub fn shared_bytes(&self) -> usize {
        shared_bytes_for(&self.cfg)
    }

    /// Align a batch of tasks: one block per task. The task slice is
    /// borrowed straight into the kernel — no host-side copy — and each
    /// simulation worker reuses one staging workspace across all the
    /// blocks it executes.
    pub fn align_batch(&self, tasks: &[AlignTask]) -> Result<GpuBatchReport, SimError> {
        let kernel = GenAsmKernel { cfg: self.cfg };
        let shared_bytes = self.shared_bytes();
        let report = self
            .device
            .launch(tasks.len(), ROW_GROUP, shared_bytes, &kernel, tasks)?;
        Ok(GpuBatchReport {
            results: report.outputs,
            totals: report.totals,
            timing: report.timing,
            host_ms: report.host_ms,
            shared_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    fn task(q: &str, t: &str) -> AlignTask {
        AlignTask::new(0, 0, seq(q), seq(t))
    }

    #[test]
    fn improved_fits_in_shared_memory_baseline_does_not() {
        let imp = GpuAligner::improved(Device::a6000());
        let base = GpuAligner::baseline(Device::a6000());
        let limit = imp.device.desc.shared_mem_per_block;
        assert!(
            imp.shared_bytes() <= limit,
            "improved table must fit on-chip: {} B vs {} B",
            imp.shared_bytes(),
            limit
        );
        // The unimproved 4-word full table would need 4*65*64*8 B.
        let full_table_bytes = 4 * 65 * 64 * 8;
        assert!(
            full_table_bytes > limit,
            "the unimproved table unexpectedly fits on-chip"
        );
        // So the baseline kernel only asks for scratch.
        assert!(base.shared_bytes() < 4 * 1024);
    }

    #[test]
    fn small_batch_aligns_correctly() {
        let gpu = GpuAligner::improved(Device::a6000());
        let tasks = vec![
            task("ACGTACGTAC", "ACGTACGTAC"),
            task("ACGTACGTAC", "ACGAACGTAC"),
            task("ACGTACGTAC", "ACGTACG"),
        ];
        let report = gpu.align_batch(&tasks).unwrap();
        assert_eq!(report.results.len(), 3);
        for (t, r) in tasks.iter().zip(&report.results) {
            r.alignment.check(&t.query, &t.target).unwrap();
        }
        assert_eq!(report.results[0].alignment.edit_distance, 0);
        assert_eq!(report.results[1].alignment.edit_distance, 1);
        assert!(report.timing.total_ms > 0.0);
    }

    #[test]
    fn gpu_matches_cpu_exactly() {
        let gpu_imp = GpuAligner::improved(Device::a6000());
        let gpu_base = GpuAligner::baseline(Device::a6000());
        let cpu = genasm_core::GenAsmAligner::improved();
        let q = "ACGTTGCA".repeat(40);
        let mut tbytes = q.clone().into_bytes();
        tbytes[100] = b'A';
        tbytes[200] = b'C';
        let t = String::from_utf8(tbytes).unwrap();
        let tasks = vec![task(&q, &t)];
        let ri = gpu_imp.align_batch(&tasks).unwrap();
        let rb = gpu_base.align_batch(&tasks).unwrap();
        let mut stats = genasm_core::MemStats::new();
        let ca = cpu
            .align_with_stats(&tasks[0].query, &tasks[0].target, &mut stats)
            .unwrap();
        assert_eq!(ri.results[0].alignment.cigar, ca.cigar);
        assert_eq!(rb.results[0].alignment.cigar, ca.cigar);
        // The GPU rows-computed must agree with the CPU instrumentation.
        assert_eq!(ri.results[0].rows_computed, stats.rows_computed);
    }

    #[test]
    fn baseline_generates_far_more_global_traffic() {
        let gpu_imp = GpuAligner::improved(Device::a6000());
        let gpu_base = GpuAligner::baseline(Device::a6000());
        let q = "ACGTTGCAGGATCCAT".repeat(32); // 512 bases
        let tasks = vec![task(&q, &q)];
        let ri = gpu_imp.align_batch(&tasks).unwrap();
        let rb = gpu_base.align_batch(&tasks).unwrap();
        assert!(
            rb.totals.global_bytes > 20 * ri.totals.global_bytes,
            "baseline {} B vs improved {} B",
            rb.totals.global_bytes,
            ri.totals.global_bytes
        );
        assert!(
            rb.timing.total_ms > ri.timing.total_ms,
            "baseline modeled time must exceed improved"
        );
    }

    #[test]
    fn budget_exhaustion_is_a_kernel_failure() {
        let mut cfg = GenAsmConfig::improved();
        cfg.k = 2;
        let gpu = GpuAligner::with_config(Device::a6000(), cfg);
        let tasks = vec![task("AAAAAAAAAA", "TTTTTTTTTT")];
        let err = gpu.align_batch(&tasks).unwrap_err();
        assert!(matches!(err, SimError::KernelFailed { .. }));
    }

    #[test]
    fn empty_batch_is_fine() {
        let gpu = GpuAligner::improved(Device::a6000());
        let report = gpu.align_batch(&[]).unwrap();
        assert!(report.results.is_empty());
    }

    #[test]
    fn hinted_task_is_bit_identical_and_sweeps_fewer_rows() {
        // Use the *baseline* config so early termination cannot mask
        // the hint's row savings.
        let gpu = GpuAligner::baseline(Device::a6000());
        let q = "ACGTTGCA".repeat(40);
        let mut tbytes = q.clone().into_bytes();
        tbytes[100] = b'A';
        let t = String::from_utf8(tbytes).unwrap();
        let plain = task(&q, &t);
        let hinted = plain.clone().with_edit_bound(4); // clamps to MIN_HINT_K
        let rp = gpu.align_batch(&[plain]).unwrap();
        let rh = gpu.align_batch(&[hinted]).unwrap();
        assert_eq!(
            rp.results[0].alignment.cigar, rh.results[0].alignment.cigar,
            "hint must not change the output"
        );
        assert!(!rh.results[0].rescued);
        assert_eq!(rh.results[0].windows, rp.results[0].windows);
        // 9 rows per window under the clamped hint, 65 unhinted.
        assert_eq!(
            rh.results[0].rows_computed,
            9 * rh.results[0].windows as u64
        );
        assert!(rh.results[0].rows_computed < rp.results[0].rows_computed / 5);
        assert!(
            rh.totals.extra_warp_cycles < rp.totals.extra_warp_cycles,
            "tight band must cost fewer warp cycles"
        );
    }

    #[test]
    fn too_tight_hint_rescues_on_device() {
        let gpu = GpuAligner::improved(Device::a6000());
        let q = "A".repeat(100);
        let t = "T".repeat(100);
        let plain = task(&q, &t);
        let hinted = plain.clone().with_edit_bound(1);
        let rp = gpu.align_batch(&[plain]).unwrap();
        let rh = gpu.align_batch(&[hinted]).unwrap();
        assert!(rh.results[0].rescued, "all-mismatch input must rescue");
        assert_eq!(
            rp.results[0].alignment.cigar, rh.results[0].alignment.cigar,
            "rescue must reproduce the unhinted result"
        );
        assert!(
            rh.totals.extra_warp_cycles > rp.totals.extra_warp_cycles,
            "the failed tight attempt's work must stay on the books"
        );
    }
}
