//! The GenASM GPU kernels.
//!
//! One thread block aligns one (read, reference-window) pair, walking
//! the same greedy window pipeline as the CPU implementation. Inside a
//! window, the DP is computed by a **row-group wavefront**: rows are
//! processed in groups of [`ROW_GROUP`] threads; within a group, thread
//! `r` computes row `d0 + r` along an anti-diagonal front (cell
//! `(d, i)` is computed at step `s = (d - d0) + i`), and the group's
//! bottom row is written to a full-width boundary buffer for the next
//! group. Early termination stops after the group containing `d*`.
//!
//! The only difference between the improved and the unimproved kernel
//! is where the traceback table lives and how wide its entries are:
//!
//! * **improved** (1 word/entry, early termination, DENT cut): the
//!   table fits in shared memory (~21 KB worst case), so DP traffic
//!   stays on-chip;
//! * **unimproved** (4 words/entry, all `k+1` rows, no cut): the table
//!   is 4·65·64·8 B ≈ 133 KB per window — beyond the A6000's 99 KB
//!   per-block shared limit — so it lives in global memory, and every
//!   DP store and every traceback load pays DRAM latency and bandwidth.
//!
//! That asymmetry is the paper's central GPU claim (experiment E7).
//!
//! Like the CPU driver, the kernel honours a task's `max_edits` hint:
//! the block first runs the whole pipeline at the tightened budget
//! `clamp(hint, MIN_HINT_K, k)` (fewer row groups per window, global
//! staging sized to the band) and, if any window exceeds it, reruns at
//! the full `k` — so hinted results are bit-identical to unhinted ones.

use align_core::{Alignment, Cigar, CigarOp};
use genasm_core::bitvec::{init_row, step_row, step_row0, step_row_edges, PatternMask};
use genasm_core::{GenAsmConfig, MIN_HINT_K};
use gpu_sim::{BlockCtx, GlobalBuf, Kernel, SharedBuf, SimError};

/// Threads per row-group (and per block).
pub const ROW_GROUP: usize = 8;

/// Modeled ALU cost of one wavefront step per thread, in issue slots:
/// the `step_row` bit recurrence (≈12 logic ops), operand addressing and
/// the predicated stores come to roughly 20 instructions. This is an
/// instruction-count estimate of the kernel body, not a constant fitted
/// to the paper's speedups.
pub const CELL_COST_CYCLES: u64 = 20;

/// Modeled ALU cost of one serial traceback step (edge re-derivation,
/// branching, op emission).
pub const TB_STEP_COST_CYCLES: u64 = 30;

/// Modeled per-window control overhead (window setup, mask build,
/// re-anchoring logic) in warp-cycles.
pub const WINDOW_OVERHEAD_CYCLES: u64 = 200;

/// Where a window's traceback table lives.
enum TableMem {
    Shared(SharedBuf),
    Global(GlobalBuf),
}

impl TableMem {
    #[inline]
    fn store(&mut self, ctx: &mut BlockCtx, idx: usize, val: u64) {
        match self {
            TableMem::Shared(b) => ctx.sh_store(b, idx, val),
            TableMem::Global(b) => ctx.gl_store(b, idx, val),
        }
    }

    #[inline]
    fn load(&mut self, ctx: &mut BlockCtx, idx: usize) -> u64 {
        match self {
            TableMem::Shared(b) => ctx.sh_load(b, idx),
            TableMem::Global(b) => ctx.gl_load(b, idx),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            TableMem::Shared(b) => b.len(),
            TableMem::Global(b) => b.len(),
        }
    }
}

/// Reusable host-side staging of one simulation worker: each worker
/// reuses these buffers across every block (task) it executes, and
/// within a block across every window, mirroring the CPU side's
/// `AlignWorkspace` arena discipline.
#[derive(Debug, Default)]
pub struct KernelWorkspace {
    /// Reversed 2-bit text codes of the current window.
    text_rev: Vec<u8>,
    /// Committed operations of the current window, forward order.
    ops: Vec<CigarOp>,
}

/// Per-task output.
#[derive(Debug, Clone)]
pub struct GpuAlignment {
    /// The alignment (identical to the CPU result by construction;
    /// property-tested in `tests/gpu_vs_cpu.rs`).
    pub alignment: Alignment,
    /// Windows processed in the accepted run (a rescued block's failed
    /// tight attempt is not counted here, only its device-time charge).
    pub windows: u32,
    /// Error rows computed in the accepted run, summed over windows.
    pub rows_computed: u64,
    /// Windows whose table spilled from shared to global memory
    /// (improved kernel only; rare high-error final windows).
    pub spilled_windows: u32,
    /// True when the task's edit-bound hint was too tight and the block
    /// reran the whole pipeline at the full `k` (results stay
    /// bit-identical to an unhinted run by construction).
    pub rescued: bool,
}

/// The GenASM kernel; flavour chosen by `cfg.improvements`. Launch it
/// over a borrowed task slice — tasks are never copied host-side.
pub struct GenAsmKernel {
    /// GenASM configuration (improvements decide the kernel flavour).
    pub cfg: GenAsmConfig,
}

/// Shared-memory words of the improved kernel's static table
/// allocation (sized for the non-final window shape).
pub fn improved_table_words(cfg: &GenAsmConfig) -> usize {
    (cfg.k + 1) * (cfg.keep() + 1).min(cfg.w)
}

/// Total shared bytes per block for the given configuration (table if
/// it can stay on-chip, plus the wavefront scratch buffers).
pub fn shared_bytes_for(cfg: &GenAsmConfig) -> usize {
    let scratch = 2 * cfg.w + 3 * ROW_GROUP;
    let table = if cfg.words_per_entry() == 1 {
        if cfg.improvements.dent {
            improved_table_words(cfg)
        } else {
            (cfg.k + 1) * cfg.w
        }
    } else {
        0 // 4-word entries: table in global memory, shared holds scratch only
    };
    (table + scratch) * 8
}

impl Kernel for GenAsmKernel {
    type Args = [align_core::AlignTask];
    type Output = GpuAlignment;
    type Workspace = KernelWorkspace;

    fn block(
        &self,
        ctx: &mut BlockCtx,
        tasks: &[align_core::AlignTask],
        ws: &mut KernelWorkspace,
    ) -> Result<GpuAlignment, SimError> {
        let task = &tasks[ctx.block_idx];
        let cfg = &self.cfg;
        cfg.validate();
        let query = &task.query;
        let target = &task.target;

        // Stream the 2-bit packed input windows in.
        ctx.charge_global_stream(((query.len() + target.len()) / 4 + 2) as u64);

        // Static shared allocations, reused across windows (and, for
        // hinted blocks, across the tight attempt and its rescue). The
        // table is sized for the full `k` so a rescue never re-allocates.
        let wpe = cfg.words_per_entry();
        let static_table_words = if wpe == 1 {
            if cfg.improvements.dent {
                improved_table_words(cfg)
            } else {
                (cfg.k + 1) * cfg.w
            }
        } else {
            0
        };
        let mut sh = BlockShared {
            table: if static_table_words > 0 {
                Some(ctx.shared_alloc(static_table_words)?)
            } else {
                None
            },
            boundary: ctx.shared_alloc(cfg.w)?,
            boundary_next: ctx.shared_alloc(cfg.w)?,
            diag_a: ctx.shared_alloc(ROW_GROUP)?,
            diag_b: ctx.shared_alloc(ROW_GROUP)?,
            diag_c: ctx.shared_alloc(ROW_GROUP)?,
        };

        // The task's edit-bound hint caps the per-window row sweep, the
        // same way the CPU driver's hinted path does. A tight run that
        // succeeds is bit-identical to the full run (the budget never
        // enters a bitvector value); one that fails is rerun at the
        // full `k`, which *is* the unhinted computation.
        let k_eff = match task.max_edits {
            Some(h) => (h as usize).max(MIN_HINT_K).min(cfg.k),
            None => cfg.k,
        };
        if k_eff < cfg.k {
            let tight = GenAsmConfig { k: k_eff, ..*cfg };
            match pipeline_on_device(ctx, query, target, &tight, &mut sh, ws) {
                Err(SimError::KernelFailed { .. }) => {
                    // Rescue: the failed attempt's device-time charges
                    // stay on the books (that work really happened).
                    let mut g = pipeline_on_device(ctx, query, target, cfg, &mut sh, ws)?;
                    g.rescued = true;
                    Ok(g)
                }
                other => other,
            }
        } else {
            pipeline_on_device(ctx, query, target, cfg, &mut sh, ws)
        }
    }
}

/// The per-block shared-memory allocations, bundled so the greedy
/// pipeline can run more than once per block (hinted attempt + rescue).
struct BlockShared {
    table: Option<SharedBuf>,
    boundary: SharedBuf,
    boundary_next: SharedBuf,
    diag_a: SharedBuf,
    diag_b: SharedBuf,
    diag_c: SharedBuf,
}

/// The whole greedy window pipeline for one task at one fixed budget
/// (`cfg.k` is the effective budget; tightened for hinted attempts).
fn pipeline_on_device(
    ctx: &mut BlockCtx,
    query: &align_core::Seq,
    target: &align_core::Seq,
    cfg: &GenAsmConfig,
    sh: &mut BlockShared,
    ws: &mut KernelWorkspace,
) -> Result<GpuAlignment, SimError> {
    let wpe = cfg.words_per_entry();
    let mut cigar = Cigar::new();
    let mut qpos = 0usize;
    let mut tpos = 0usize;
    let mut windows = 0u32;
    let mut rows_total = 0u64;
    let mut spilled = 0u32;

    loop {
        let qrem = query.len() - qpos;
        let trem = target.len() - tpos;
        if qrem == 0 {
            cigar.push_run(trem as u32, CigarOp::Del);
            break;
        }
        if trem == 0 {
            cigar.push_run(qrem as u32, CigarOp::Ins);
            break;
        }
        let m = qrem.min(cfg.w);
        let n = trem.min(cfg.w);
        // Infeasibility pre-flight: a solution needs `m <= n + d`, so a
        // hopeless window is abandoned before any row is swept (O(1)
        // instead of O(k·n); mirrors the CPU engine's pre-flight).
        if m > n + cfg.k {
            return Err(SimError::KernelFailed {
                reason: format!("window needs more than k={} edits", cfg.k),
            });
        }
        let final_window = m == qrem && n == trem;
        let keep = if final_window { m } else { cfg.keep() };
        let cut = if final_window || !cfg.improvements.dent {
            0
        } else {
            n.saturating_sub(keep + 1)
        };
        let cols = n - cut;

        let pm = PatternMask::new_reversed_window(query, qpos, m);
        ws.text_rev.clear();
        ws.text_rev
            .extend((0..n).rev().map(|i| target.get_code(tpos + i)));

        // Pick storage: start in the static shared table when one
        // exists; if early termination turns out to need more rows
        // than it can hold (possible on high-error final windows,
        // whose column count exceeds the static non-final shape),
        // the window restarts in global memory. Global staging is
        // sized to the *effective* band, not the configured worst
        // case, so tight hinted attempts stage less DRAM.
        let needs_worst = (cfg.k + 1) * cols * wpe;
        let mut table = match sh.table.take() {
            Some(buf) => TableMem::Shared(buf),
            None => TableMem::Global(ctx.global_alloc(needs_worst)),
        };

        let first = {
            let io = WindowIo {
                table: &mut table,
                boundary: &mut sh.boundary,
                boundary_next: &mut sh.boundary_next,
                diag_a: &mut sh.diag_a,
                diag_b: &mut sh.diag_b,
                diag_c: &mut sh.diag_c,
            };
            window_on_device(
                ctx,
                io,
                &pm,
                &ws.text_rev,
                cfg,
                cut,
                keep,
                final_window,
                &mut ws.ops,
            )
        };
        // Return the static shared table before any early exit: a
        // budget failure here must leave it available to the rescue
        // rerun, not drop it.
        if let TableMem::Shared(buf) = table {
            sh.table = Some(buf);
        }
        let mut win = first?;
        if win.is_none() {
            // Spill: redo this window with the table in DRAM.
            spilled += 1;
            let mut global = TableMem::Global(ctx.global_alloc(needs_worst));
            let io = WindowIo {
                table: &mut global,
                boundary: &mut sh.boundary,
                boundary_next: &mut sh.boundary_next,
                diag_a: &mut sh.diag_a,
                diag_b: &mut sh.diag_b,
                diag_c: &mut sh.diag_c,
            };
            win = window_on_device(
                ctx,
                io,
                &pm,
                &ws.text_rev,
                cfg,
                cut,
                keep,
                final_window,
                &mut ws.ops,
            )?;
        }
        let win = win.expect("global table cannot run out of capacity");

        windows += 1;
        rows_total += win.rows as u64;
        for &op in &ws.ops {
            cigar.push(op);
        }
        qpos += win.qc;
        tpos += win.tc;
        if final_window {
            let leftover = target.len() - tpos;
            cigar.push_run(leftover as u32, CigarOp::Del);
            break;
        }
    }

    // Stream the CIGAR out.
    ctx.charge_global_stream(cigar.runs().len() as u64 * 5 + 8);
    Ok(GpuAlignment {
        alignment: Alignment::from_cigar(cigar),
        windows,
        rows_computed: rows_total,
        spilled_windows: spilled,
        rescued: false,
    })
}

struct WindowIo<'a> {
    table: &'a mut TableMem,
    boundary: &'a mut SharedBuf,
    boundary_next: &'a mut SharedBuf,
    diag_a: &'a mut SharedBuf,
    diag_b: &'a mut SharedBuf,
    diag_c: &'a mut SharedBuf,
}

struct WindowOut {
    qc: usize,
    tc: usize,
    rows: usize,
}

/// One window on the device: grouped-wavefront DC + serial traceback.
/// Committed operations land in `ops` (cleared first; worker-reused).
///
/// Returns `Ok(None)` when the next row group would not fit the table's
/// capacity — the caller then restarts the window in global memory.
#[allow(clippy::too_many_arguments)]
fn window_on_device(
    ctx: &mut BlockCtx,
    io: WindowIo<'_>,
    pm: &PatternMask,
    text_rev: &[u8],
    cfg: &GenAsmConfig,
    cut: usize,
    keep: usize,
    final_window: bool,
    ops: &mut Vec<CigarOp>,
) -> Result<Option<WindowOut>, SimError> {
    let WindowIo {
        table,
        boundary,
        boundary_next,
        diag_a,
        diag_b,
        diag_c,
    } = io;
    let mut diag_a = diag_a;
    let mut diag_b = diag_b;
    let mut diag_c = diag_c;

    let n = text_rev.len();
    let cols = n - cut;
    let wpe = cfg.words_per_entry();
    let solution = pm.solution_bit();
    let total_rows = cfg.k + 1;
    let groups = total_rows.div_ceil(ROW_GROUP);

    let mut d_star: Option<usize> = None;
    'groups: for g in 0..groups {
        let d0 = g * ROW_GROUP;
        let rows = ROW_GROUP.min(total_rows - d0);
        if (d0 + rows) * cols * wpe > table.capacity() {
            // The group would overflow the table: spill.
            return Ok(None);
        }
        for s in 0..(n + rows - 1) {
            let lo = s.saturating_sub(n - 1);
            let hi = (rows - 1).min(s);
            let mut solved: Option<usize> = None;
            ctx.phase(lo..hi + 1, |r, c| {
                let d = d0 + r;
                let i = s - r;
                let pmv = pm.get(text_rev[i]);
                let cur_prev = if i == 0 {
                    init_row(d)
                } else {
                    c.sh_load(diag_b, r)
                };
                let (val, edges) = if d == 0 {
                    let v = step_row0(cur_prev, pmv);
                    (v, [v, !0, !0, !0])
                } else {
                    let (below_prev, below_cur) = if r == 0 {
                        let bp = if i == 0 {
                            init_row(d - 1)
                        } else {
                            c.sh_load(boundary, i - 1)
                        };
                        (bp, c.sh_load(boundary, i))
                    } else {
                        let bp = if i == 0 {
                            init_row(d - 1)
                        } else {
                            c.sh_load(diag_a, r - 1)
                        };
                        (bp, c.sh_load(diag_b, r - 1))
                    };
                    let e = step_row_edges(below_prev, below_cur, cur_prev, pmv);
                    (step_row(below_prev, below_cur, cur_prev, pmv), e)
                };
                c.sh_store(diag_c, r, val);
                if i >= cut {
                    let base = (d * cols + (i - cut)) * wpe;
                    if wpe == 1 {
                        table.store(c, base, val);
                    } else {
                        for (slot, &w) in edges.iter().enumerate() {
                            table.store(c, base + slot, w);
                        }
                    }
                }
                if r == rows - 1 {
                    c.sh_store(boundary_next, i, val);
                }
                if i == n - 1 && val & solution == 0 {
                    solved = Some(d);
                }
            });
            // ALU cost of the recurrence for this step's active warps.
            let warps = ((hi + 1 - lo) as u64).div_ceil(32);
            ctx.charge_warp_cycles(warps.max(1) * CELL_COST_CYCLES);
            // Rotate diagonals: a <- b, b <- c.
            std::mem::swap(&mut diag_a, &mut diag_b);
            std::mem::swap(&mut diag_b, &mut diag_c);
            if let Some(d) = solved {
                if d_star.is_none() {
                    d_star = Some(d);
                    if cfg.improvements.early_term {
                        break 'groups;
                    }
                }
            }
        }
        std::mem::swap(boundary, boundary_next);
    }

    let d_star = d_star.ok_or_else(|| SimError::KernelFailed {
        reason: format!("window needs more than k={} edits", cfg.k),
    })?;
    let rows = if cfg.improvements.early_term {
        d_star + 1
    } else {
        total_rows
    };

    // Serial traceback by thread 0.
    let mut out = WindowOut { qc: 0, tc: 0, rows };
    ops.clear();
    ctx.serial_phase(|c| {
        traceback_on_device(
            c,
            table,
            pm,
            text_rev,
            cfg,
            cut,
            keep,
            final_window,
            d_star,
            ops,
            &mut out,
        );
    });
    ctx.charge_warp_cycles(ops.len() as u64 * TB_STEP_COST_CYCLES + WINDOW_OVERHEAD_CYCLES);
    Ok(Some(out))
}

#[inline(always)]
fn active(word: u64, j: usize) -> bool {
    word & (1u64 << j) == 0
}

/// The traceback walk, reading the table through the simulator so every
/// load is charged to the right memory.
#[allow(clippy::too_many_arguments)]
fn traceback_on_device(
    ctx: &mut BlockCtx,
    table: &mut TableMem,
    pm: &PatternMask,
    text_rev: &[u8],
    cfg: &GenAsmConfig,
    cut: usize,
    keep: usize,
    final_window: bool,
    d_star: usize,
    ops: &mut Vec<CigarOp>,
    out: &mut WindowOut,
) {
    let m = pm.len();
    let n = text_rev.len();
    let cols = n - cut;
    let wpe = cfg.words_per_entry();
    let mut d = d_star;
    let mut i = n; // column + 1 (0 = virtual init column)
    let mut j = m; // pattern bit + 1

    // R[d][i-1] with init folding, for the compressed layout.
    macro_rules! load_r {
        ($ctx:expr, $d:expr, $ip1:expr) => {{
            if $ip1 == 0 {
                init_row($d)
            } else {
                debug_assert!($ip1 > cut, "DENT cut violated in GPU traceback");
                table.load($ctx, ($d * cols + ($ip1 - 1 - cut)) * wpe)
            }
        }};
    }

    while j > 0 && (final_window || (out.qc < keep && out.tc < keep)) {
        let op = if i == 0 {
            debug_assert!(d > 0 && active(init_row(d), j - 1));
            CigarOp::Ins
        } else if wpe == 4 {
            // Unimproved: read the stored edge vectors in priority order.
            let col = i - 1;
            debug_assert!(col >= cut);
            let base = (d * cols + (col - cut)) * wpe;
            let mword = table.load(ctx, base);
            if active(mword, j - 1) {
                CigarOp::Match
            } else {
                debug_assert!(d > 0, "row 0 entry without a match edge");
                let sword = table.load(ctx, base + 1);
                if active(sword, j - 1) {
                    CigarOp::Mismatch
                } else {
                    let dword = table.load(ctx, base + 2);
                    if active(dword, j - 1) {
                        CigarOp::Del
                    } else {
                        let iword = table.load(ctx, base + 3);
                        debug_assert!(active(iword, j - 1), "no active edge (GPU baseline)");
                        CigarOp::Ins
                    }
                }
            }
        } else {
            // Improved: re-derive the edges from stored entries.
            let mut op = None;
            if active(pm.get(text_rev[i - 1]), j - 1) {
                let diag_ok = j == 1 || active(load_r!(ctx, d, i - 1), j - 2);
                if diag_ok {
                    op = Some(CigarOp::Match);
                }
            }
            if op.is_none() && d > 0 {
                let below_prev = load_r!(ctx, d - 1, i - 1);
                if j == 1 || active(below_prev, j - 2) {
                    op = Some(CigarOp::Mismatch);
                } else if active(below_prev, j - 1) {
                    op = Some(CigarOp::Del);
                } else {
                    let below_cur = load_r!(ctx, d - 1, i);
                    debug_assert!(j == 1 || active(below_cur, j - 2), "no active edge (GPU)");
                    op = Some(CigarOp::Ins);
                }
            }
            op.expect("DC/TB inconsistency in GPU kernel")
        };
        match op {
            CigarOp::Match | CigarOp::Mismatch => {
                ops.push(op);
                i -= 1;
                j -= 1;
                out.qc += 1;
                out.tc += 1;
                if op == CigarOp::Mismatch {
                    d -= 1;
                }
            }
            CigarOp::Del => {
                ops.push(CigarOp::Del);
                i -= 1;
                out.tc += 1;
                d -= 1;
            }
            CigarOp::Ins => {
                ops.push(CigarOp::Ins);
                j -= 1;
                out.qc += 1;
                d -= 1;
            }
        }
    }
}
