//! Property tests: the GPU kernels are bit-identical to the CPU
//! implementation for every improvement combination, and the improved
//! kernel's working set stays on-chip.

use align_core::{AlignTask, Base, Seq};
use genasm_core::{GenAsmConfig, Improvements, MemStats};
use genasm_gpu::GpuAligner;
use gpu_sim::{Device, DeviceDescriptor};
use proptest::prelude::*;

fn arb_mutated_pair(max_len: usize, max_edits: usize) -> impl Strategy<Value = (Seq, Seq)> {
    (
        prop::collection::vec(0u8..4, 1..=max_len),
        prop::collection::vec((any::<u8>(), any::<u16>(), 0u8..4), 0..=max_edits),
    )
        .prop_map(|(codes, edits)| {
            let q: Seq = codes.iter().map(|&c| Base::from_code(c)).collect();
            let mut t: Vec<Base> = q.iter().collect();
            for (kind, pos, code) in edits {
                if t.is_empty() {
                    break;
                }
                let pos = pos as usize % t.len();
                match kind % 3 {
                    0 => t[pos] = Base::from_code(code),
                    1 => t.insert(pos, Base::from_code(code)),
                    _ => {
                        t.remove(pos);
                    }
                }
            }
            if t.is_empty() {
                t.push(Base::A);
            }
            (q, t.into_iter().collect())
        })
}

fn device() -> Device {
    // Use a small host worker count for test determinism under load.
    let mut d = Device::a6000();
    d.host_workers = 2;
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gpu_improved_equals_cpu((q, t) in arb_mutated_pair(300, 20)) {
        let cfg = GenAsmConfig::improved();
        let gpu = GpuAligner::with_config(device(), cfg);
        let tasks = vec![AlignTask::new(0, 0, q.clone(), t.clone())];
        let report = gpu.align_batch(&tasks).unwrap();
        let mut stats = MemStats::new();
        let cpu = genasm_core::align_with_stats(&q, &t, &cfg, &mut stats).unwrap();
        prop_assert_eq!(&report.results[0].alignment.cigar, &cpu.cigar);
        prop_assert_eq!(report.results[0].rows_computed, stats.rows_computed);
        prop_assert_eq!(report.results[0].windows as u64, stats.windows);
        report.results[0].alignment.check(&q, &t).unwrap();
    }

    #[test]
    fn gpu_baseline_equals_cpu((q, t) in arb_mutated_pair(220, 14)) {
        let cfg = GenAsmConfig::baseline();
        let gpu = GpuAligner::with_config(device(), cfg);
        let tasks = vec![AlignTask::new(0, 0, q.clone(), t.clone())];
        let report = gpu.align_batch(&tasks).unwrap();
        let mut stats = MemStats::new();
        let cpu = genasm_core::align_with_stats(&q, &t, &cfg, &mut stats).unwrap();
        prop_assert_eq!(&report.results[0].alignment.cigar, &cpu.cigar);
    }

    #[test]
    fn gpu_all_improvement_combinations_equal_cpu((q, t) in arb_mutated_pair(150, 10)) {
        for improvements in Improvements::all_combinations() {
            let cfg = GenAsmConfig { improvements, ..GenAsmConfig::improved() };
            let gpu = GpuAligner::with_config(device(), cfg);
            let tasks = vec![AlignTask::new(0, 0, q.clone(), t.clone())];
            let report = gpu.align_batch(&tasks).unwrap();
            let mut stats = MemStats::new();
            let cpu = genasm_core::align_with_stats(&q, &t, &cfg, &mut stats).unwrap();
            prop_assert_eq!(&report.results[0].alignment.cigar, &cpu.cigar,
                "combination {} diverged on GPU", improvements.label());
        }
    }

    #[test]
    fn improved_kernel_never_spills_on_nonfinal_windows((q, t) in arb_mutated_pair(400, 10)) {
        // Low-error pairs: the final window's d* is small, so even it
        // fits the static table; expect zero spills.
        let gpu = GpuAligner::improved(device());
        let tasks = vec![AlignTask::new(0, 0, q.clone(), t.clone())];
        let report = gpu.align_batch(&tasks).unwrap();
        prop_assert_eq!(report.results[0].spilled_windows, 0,
            "low-error alignment should stay on-chip");
    }

    #[test]
    fn batch_outputs_in_task_order(pairs in prop::collection::vec(arb_mutated_pair(120, 6), 1..8)) {
        let gpu = GpuAligner::improved(device());
        let tasks: Vec<AlignTask> = pairs
            .iter()
            .enumerate()
            .map(|(i, (q, t))| AlignTask::new(i as u32, 0, q.clone(), t.clone()))
            .collect();
        let report = gpu.align_batch(&tasks).unwrap();
        for (task, res) in tasks.iter().zip(&report.results) {
            res.alignment.check(&task.query, &task.target).unwrap();
        }
    }
}

#[test]
fn tiny_device_rejects_improved_kernel_shared_usage() {
    // The improved kernel's table cannot fit a 2 KB shared budget; the
    // launch must fail cleanly rather than silently spill.
    let dev = Device::new(DeviceDescriptor::tiny());
    let gpu = GpuAligner::improved(dev);
    let q = Seq::from_ascii(b"ACGTACGT").unwrap();
    let err = gpu
        .align_batch(&[AlignTask::new(0, 0, q.clone(), q)])
        .unwrap_err();
    assert!(matches!(err, gpu_sim::SimError::InvalidLaunch { .. }));
}

#[test]
fn high_error_final_window_spills_to_global() {
    // An all-mismatch final window drives d* to the maximum, exceeding
    // the static shared table (sized for keep+1 columns), so the kernel
    // must spill that window to global memory and still be correct.
    let gpu = GpuAligner::improved(Device::a6000());
    let q = Seq::from_ascii("A".repeat(64).as_bytes()).unwrap();
    let t = Seq::from_ascii("T".repeat(64).as_bytes()).unwrap();
    let tasks = vec![AlignTask::new(0, 0, q.clone(), t.clone())];
    let report = gpu.align_batch(&tasks).unwrap();
    report.results[0].alignment.check(&q, &t).unwrap();
    assert_eq!(report.results[0].spilled_windows, 1);
}
